//! Source-level concurrency audit for the whole workspace.
//!
//! The audit discovers every `.rs` file under `crates/*/src` and runs
//! four passes over them:
//!
//! 1. **Per-site ordering audit** ([`scan_workspace`] + [`audit`]):
//!    every atomic operation site must match an entry in the committed
//!    policy table ([`crate::policy::POLICY`]) and use one of its allowed
//!    ordering sequences. Harness code (the model checker, the bench
//!    scaffolding) is covered by an explicit per-file allowlist
//!    ([`crate::policy::SCAN_ALLOWLIST`]) instead — its sites are still
//!    discovered and counted, but not policy-matched. The audit is
//!    strict in both directions: an unknown site fails (new atomics must
//!    be justified before they land) and a policy entry matching no site
//!    fails (the table cannot rot).
//! 2. **Publication-pair audit** ([`audit_pairs`]): every policy entry
//!    with Acquire semantics must name, in its `pairs_with` field, the
//!    release-capable entry (or entries) it synchronizes with, and every
//!    entry with Release semantics must be named by someone — an
//!    orphaned Release store is either dead publication or an
//!    undocumented reader, and both deserve a failure.
//! 3. **Facade conformance** ([`audit_facade`]): product code must reach
//!    atomics and locks through the `nabbitc_runtime::sync` facade (so
//!    the `--cfg nabbitc_check` loom shim covers it); direct
//!    `std::sync::atomic` / `parking_lot` references outside the facade
//!    are failures unless a [`crate::policy::FACADE_EXEMPT`] entry
//!    justifies them (the one legitimate case: `Condvar`, which has no
//!    loom shim).
//! 4. **SAFETY comments** ([`audit_safety`]): every `unsafe` token in
//!    non-test code must have a `SAFETY`/`# Safety` justification on the
//!    same or a nearby preceding line.
//!
//! A site passes the ordering audit only if its ordering *sequence*
//! equals one of the allowed sequences, so a downgrade (e.g. the seeded
//! `nabbitc_weak_pop` canary turning the `SeqCst` pop fence into
//! `Release`, or `nabbitc_weak_join` relaxing the join-counter scan) is
//! caught statically, without building or running the weakened code.
//!
//! The scanner is a purpose-built lexer, not a Rust parser: it masks
//! comments, strings, and char literals, truncates each file at its test
//! module, tracks `fn` names and per-line `#[cfg(...)]` attributes, and
//! then pattern-matches the seven atomic operations the workspace
//! actually uses. A same-named non-atomic call (`Vec::swap`, a config
//! `load`) is recognized by its missing `Ordering` argument and skipped
//! — an atomic op cannot be spelled without one — while a call with the
//! wrong *number* of orderings still fails loudly.

use std::fmt;
use std::path::{Path, PathBuf};

/// The five `std::sync::atomic::Ordering` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOrdering {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl AtomicOrdering {
    /// Parses an ordering identifier (`"Relaxed"`, `"SeqCst"`, ...).
    pub fn parse(s: &str) -> Option<AtomicOrdering> {
        match s {
            "Relaxed" => Some(AtomicOrdering::Relaxed),
            "Acquire" => Some(AtomicOrdering::Acquire),
            "Release" => Some(AtomicOrdering::Release),
            "AcqRel" => Some(AtomicOrdering::AcqRel),
            "SeqCst" => Some(AtomicOrdering::SeqCst),
            _ => None,
        }
    }
}

impl fmt::Display for AtomicOrdering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The atomic operations the workspace uses. `orderings()` is how many
/// ordering arguments each takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    Load,
    Store,
    Swap,
    FetchAdd,
    FetchSub,
    CompareExchange,
    Fence,
}

impl AtomicOp {
    /// All ops the scanner recognizes, with their source spelling.
    const ALL: [(AtomicOp, &'static str); 7] = [
        (AtomicOp::Load, "load"),
        (AtomicOp::Store, "store"),
        (AtomicOp::Swap, "swap"),
        (AtomicOp::FetchAdd, "fetch_add"),
        (AtomicOp::FetchSub, "fetch_sub"),
        (AtomicOp::CompareExchange, "compare_exchange"),
        (AtomicOp::Fence, "fence"),
    ];

    /// Source spelling (`"fetch_add"`).
    pub fn name(self) -> &'static str {
        Self::ALL.iter().find(|(op, _)| *op == self).unwrap().1
    }

    /// Number of `Ordering` arguments (`compare_exchange` takes success
    /// and failure orderings; everything else takes one).
    pub fn orderings(self) -> usize {
        if self == AtomicOp::CompareExchange {
            2
        } else {
            1
        }
    }
}

/// One atomic operation in the workspace sources.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicSite {
    /// Crate-qualified file key (`"runtime/deque.rs"`, `"core/join.rs"`):
    /// the crate's directory name under `crates/` plus the path relative
    /// to its `src/`.
    pub file: String,
    /// Enclosing `fn` name (`"steal_impl"`), or `"<module>"` at file
    /// scope.
    pub func: String,
    /// Receiver field/variable (`"top"`), or `"fence"` for fences.
    pub symbol: String,
    /// Which operation.
    pub op: AtomicOp,
    /// The ordering arguments, in source order.
    pub orderings: Vec<AtomicOrdering>,
    /// 1-based source line of the operation name.
    pub line: usize,
    /// Inner text of a `#[cfg(...)]` attribute guarding the statement,
    /// if any (`"not(nabbitc_weak_pop)"`).
    pub cfg: Option<String>,
}

impl AtomicSite {
    /// Compact one-line rendering used in audit failure messages.
    pub fn describe(&self) -> String {
        let ords: Vec<String> = self.orderings.iter().map(|o| o.to_string()).collect();
        let cfg = match &self.cfg {
            Some(c) => format!(" cfg({c})"),
            None => String::new(),
        };
        format!(
            "{}:{} {}::{}.{}({}){}",
            self.file,
            self.line,
            self.func,
            self.symbol,
            self.op.name(),
            ords.join(", "),
            cfg
        )
    }
}

/// One discovered source file: its crate-qualified key and full text.
/// Kept around so the facade and SAFETY passes run over exactly the set
/// of files the ordering audit saw.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Crate-qualified key (`"runtime/deque.rs"`).
    pub key: String,
    /// The file's raw text.
    pub text: String,
}

/// Everything the workspace discovery found: the atomic sites and the
/// files they came from.
#[derive(Debug, Clone)]
pub struct WorkspaceScan {
    /// Every atomic site in non-test code, across all crates.
    pub sites: Vec<AtomicSite>,
    /// Every discovered `.rs` file under `crates/*/src`.
    pub files: Vec<SourceFile>,
}

/// Absolute path of the workspace's `crates/` directory, resolved
/// relative to this crate so the audit works from any working directory.
pub fn crates_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .to_path_buf()
}

/// Discovers and scans every `.rs` file under `crates/*/src`.
///
/// On failure returns **all** problems at once — every unreadable file
/// and every file the lexer could not make sense of — so one broken file
/// does not hide the next.
pub fn scan_workspace() -> Result<WorkspaceScan, Vec<String>> {
    scan_crates_root(&crates_dir())
}

/// [`scan_workspace`] against an explicit crates root (testable).
pub fn scan_crates_root(root: &Path) -> Result<WorkspaceScan, Vec<String>> {
    let mut errors = Vec::new();
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(root) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => return Err(vec![format!("cannot read {}: {e}", root.display())]),
    };
    crate_dirs.sort();
    for cdir in &crate_dirs {
        let src = cdir.join("src");
        if !src.is_dir() {
            continue;
        }
        let crate_name = cdir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut paths = Vec::new();
        walk_rs(&src, &mut paths, &mut errors);
        paths.sort();
        for path in paths {
            let rel = path.strip_prefix(&src).expect("walked under src");
            let key = format!("{crate_name}/{}", rel.display());
            match std::fs::read_to_string(&path) {
                Ok(text) => files.push(SourceFile { key, text }),
                Err(e) => errors.push(format!("cannot read {}: {e}", path.display())),
            }
        }
    }
    let mut sites = Vec::new();
    for f in &files {
        match scan_source(&f.key, &f.text) {
            Ok(s) => sites.extend(s),
            Err(e) => errors.push(e),
        }
    }
    if errors.is_empty() {
        Ok(WorkspaceScan { sites, files })
    } else {
        Err(errors)
    }
}

/// Collects every `.rs` file under `dir`, recursively. Directory read
/// errors are reported, not fatal, so the caller sees all of them.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>, errors: &mut Vec<String>) {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) => {
            errors.push(format!("cannot read {}: {e}", dir.display()));
            return;
        }
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out, errors);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// Scans one file's source text. `file` is the crate-qualified key
/// recorded on each site.
pub fn scan_source(file: &str, src: &str) -> Result<Vec<AtomicSite>, String> {
    let src = truncate_at_test_module(src);
    let masked = mask_non_code(src);
    let line_starts = line_start_offsets(&masked);
    let cfgs = cfg_by_line(&masked);
    let fns = fn_starts(&masked);
    let mut sites = Vec::new();
    for (op, spelled) in AtomicOp::ALL {
        let needle = if op == AtomicOp::Fence {
            "fence(".to_string()
        } else {
            format!(".{spelled}(")
        };
        let mut from = 0;
        while let Some(rel) = masked[from..].find(&needle) {
            let at = from + rel;
            from = at + needle.len();
            if op == AtomicOp::Fence {
                // Reject `compiler_fence(` and any `foo.fence(`.
                let prev = masked[..at].chars().next_back();
                if prev.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.') {
                    continue;
                }
            }
            let line = line_of(&line_starts, at);
            let symbol = if op == AtomicOp::Fence {
                "fence".to_string()
            } else {
                receiver_symbol(&masked, at)
                    .ok_or_else(|| format!("{file}:{line}: no receiver before .{spelled}("))?
            };
            let args_start = at + needle.len();
            let args = balanced_span(&masked, args_start - 1)
                .ok_or_else(|| format!("{file}:{line}: unbalanced parens in {spelled} call"))?;
            let found = ordering_idents(&masked[args_start..args]);
            if found.is_empty() {
                // A same-named non-atomic method (`Vec::swap`, a config
                // `load`): atomics cannot be called without an
                // `Ordering` argument, so this is not a site.
                continue;
            }
            let need = op.orderings();
            if found.len() < need {
                return Err(format!(
                    "{file}:{line}: {symbol}.{spelled}(...) has {} ordering argument(s), \
                     expected at least {need}",
                    found.len()
                ));
            }
            let orderings = found[found.len() - need..].to_vec();
            sites.push(AtomicSite {
                file: file.to_string(),
                func: enclosing_fn(&fns, at),
                symbol,
                op,
                orderings,
                line,
                cfg: cfgs.get(line - 1).cloned().flatten(),
            });
        }
    }
    sites.sort_by_key(|s| (s.line, s.op.name()));
    Ok(sites)
}

/// Runs the per-site ordering audit: every active site must match a
/// policy entry and use an allowed ordering sequence, and every policy
/// entry must match at least one active site. Sites in files covered by
/// [`crate::policy::SCAN_ALLOWLIST`] (harness code) are exempt from the
/// match requirement. Returns the list of problems (empty = pass).
///
/// `active_cfgs` is the set of enabled `--cfg` flags; sites guarded by a
/// `#[cfg(...)]` that evaluates false are skipped, which is how the
/// default audit sees the `SeqCst` pop fence while an audit with
/// `"nabbitc_weak_pop"` active sees — and rejects — the `Release` one.
pub fn audit(
    sites: &[AtomicSite],
    policy: &[crate::policy::PolicyEntry],
    active_cfgs: &[&str],
) -> Vec<String> {
    let mut problems = Vec::new();
    let active: Vec<&AtomicSite> = sites
        .iter()
        .filter(|s| cfg_active(s.cfg.as_deref(), active_cfgs))
        .collect();
    let mut matched = vec![false; policy.len()];
    for site in &active {
        let entry = policy.iter().enumerate().find(|(_, e)| {
            e.file == site.file && e.func == site.func && e.symbol == site.symbol && e.op == site.op
        });
        match entry {
            None => {
                let allowlisted = crate::policy::SCAN_ALLOWLIST
                    .iter()
                    .any(|a| site.file.starts_with(a.prefix));
                if !allowlisted {
                    problems.push(format!("unknown atomic site: {}", site.describe()));
                }
            }
            Some((i, e)) => {
                matched[i] = true;
                let ok = e
                    .allowed
                    .iter()
                    .any(|seq| seq == &site.orderings.as_slice());
                if !ok {
                    let allowed: Vec<String> = e
                        .allowed
                        .iter()
                        .map(|seq| {
                            let s: Vec<String> = seq.iter().map(|o| o.to_string()).collect();
                            format!("({})", s.join(", "))
                        })
                        .collect();
                    problems.push(format!(
                        "ordering violation: {} — policy allows {} ({})",
                        site.describe(),
                        allowed.join(" or "),
                        e.why
                    ));
                }
            }
        }
    }
    for (i, e) in policy.iter().enumerate() {
        if !matched[i] {
            problems.push(format!(
                "stale policy entry: {}::{} {}.{} matches no active site",
                e.file,
                e.func,
                e.symbol,
                e.op.name()
            ));
        }
    }
    problems
}

/// Renders the `pairs_with` key of a policy entry
/// (`"runtime/deque.rs::push::fence.fence"`).
fn pair_key(e: &crate::policy::PolicyEntry) -> String {
    format!("{}::{}::{}.{}", e.file, e.func, e.symbol, e.op.name())
}

/// Publication-pair audit over the policy table itself.
///
/// * Every `pairs_with` reference must name an existing entry that can
///   actually perform a release (a non-`load` op allowing `Release`,
///   `AcqRel`, or `SeqCst`).
/// * Every entry with Acquire semantics (`Acquire` or `AcqRel` in an
///   allowed sequence) must declare its partner(s) — an Acquire that
///   synchronizes with nothing nameable is a smell worth a failure.
/// * Every pure-Release entry (allows `Release`/`AcqRel`, no Acquire
///   side of its own) must be *named by* some entry — an orphaned
///   Release store is dead publication or an undocumented reader.
///
/// `SeqCst`-only sites (the pool control plane) may pair but are not
/// required to: their correctness argument is the single total order,
/// not a specific release/acquire edge.
pub fn audit_pairs(policy: &[crate::policy::PolicyEntry]) -> Vec<String> {
    use AtomicOrdering::{AcqRel, Acquire, Release, SeqCst};
    let has = |e: &crate::policy::PolicyEntry, o: AtomicOrdering| {
        e.allowed.iter().any(|seq| seq.contains(&o))
    };
    let release_capable = |e: &crate::policy::PolicyEntry| {
        e.op != AtomicOp::Load && (has(e, Release) || has(e, AcqRel) || has(e, SeqCst))
    };
    let mut problems = Vec::new();
    let mut referenced: std::collections::HashSet<String> = std::collections::HashSet::new();
    for e in policy {
        for p in e.pairs_with {
            match policy.iter().find(|c| pair_key(c) == *p) {
                None => problems.push(format!(
                    "publication pair: {} names nonexistent partner {p}",
                    pair_key(e)
                )),
                Some(partner) => {
                    if !release_capable(partner) {
                        problems.push(format!(
                            "publication pair: {} names {p}, which can never perform a release \
                             ({} with no Release/AcqRel/SeqCst write)",
                            pair_key(e),
                            partner.op.name()
                        ));
                    }
                    referenced.insert((*p).to_string());
                }
            }
        }
    }
    for e in policy {
        let k = pair_key(e);
        let acquire_side = has(e, Acquire) || has(e, AcqRel);
        if acquire_side && e.pairs_with.is_empty() {
            problems.push(format!(
                "unpaired Acquire: {k} must name the Release site(s) it synchronizes with \
                 in pairs_with"
            ));
        }
        let pure_release =
            !acquire_side && e.op != AtomicOp::Load && (has(e, Release) || has(e, AcqRel));
        if pure_release && !referenced.contains(&k) {
            problems.push(format!(
                "orphaned Release: {k} is named by no Acquire site's pairs_with — dead \
                 publication or an undocumented reader"
            ));
        }
    }
    problems
}

/// Facade-conformance pass: non-test product code must not reference
/// `std::sync::atomic` or `parking_lot` directly — those go through the
/// `nabbitc_runtime::sync` facade so the loom shim covers them under
/// `--cfg nabbitc_check`. Harness files ([`crate::policy::SCAN_ALLOWLIST`])
/// are out of scope; justified exceptions live in
/// [`crate::policy::FACADE_EXEMPT`], and an exemption matching no
/// occurrence is itself a failure.
pub fn audit_facade(files: &[SourceFile]) -> Vec<String> {
    const TOKENS: [&str; 2] = ["std::sync::atomic", "parking_lot"];
    let mut problems = Vec::new();
    let mut used = vec![false; crate::policy::FACADE_EXEMPT.len()];
    for f in files {
        if crate::policy::SCAN_ALLOWLIST
            .iter()
            .any(|a| f.key.starts_with(a.prefix))
        {
            continue;
        }
        let text = truncate_at_test_module(&f.text);
        let masked = mask_non_code(text);
        let starts = line_start_offsets(&masked);
        for token in TOKENS {
            let mut from = 0;
            while let Some(rel) = masked[from..].find(token) {
                let at = from + rel;
                from = at + token.len();
                if let Some(i) = crate::policy::FACADE_EXEMPT
                    .iter()
                    .position(|e| e.file == f.key && e.token == token)
                {
                    used[i] = true;
                    continue;
                }
                problems.push(format!(
                    "facade escape: {}:{} references `{token}` directly; route it through \
                     nabbitc_runtime::sync or add a justified FACADE_EXEMPT entry",
                    f.key,
                    line_of(&starts, at)
                ));
            }
        }
    }
    for (i, e) in crate::policy::FACADE_EXEMPT.iter().enumerate() {
        if !used[i] {
            problems.push(format!(
                "stale facade exemption: {} / `{}` matches no source occurrence",
                e.file, e.token
            ));
        }
    }
    problems
}

/// How many preceding raw-source lines [`audit_safety`] searches for a
/// `SAFETY` / `# Safety` justification.
pub const SAFETY_WINDOW: usize = 8;

/// SAFETY-comment pass: every `unsafe` token in non-test code must have
/// a `SAFETY` or `# Safety` marker on its own line or within the
/// [`SAFETY_WINDOW`] preceding lines (which covers both `// SAFETY:`
/// block comments and `/// # Safety` doc sections on `unsafe fn`s).
pub fn audit_safety(files: &[SourceFile]) -> Vec<String> {
    let mut problems = Vec::new();
    for f in files {
        let text = truncate_at_test_module(&f.text);
        let masked = mask_non_code(text);
        let starts = line_start_offsets(&masked);
        let raw_lines: Vec<&str> = text.lines().collect();
        let bytes = masked.as_bytes();
        let mut from = 0;
        while let Some(rel) = masked[from..].find("unsafe") {
            let at = from + rel;
            from = at + "unsafe".len();
            let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
            if at > 0 && ident(bytes[at - 1]) {
                continue;
            }
            if bytes.get(at + "unsafe".len()).is_some_and(|b| ident(*b)) {
                continue;
            }
            let line = line_of(&starts, at);
            let line0 = line - 1;
            let has_marker = |l: &str| l.contains("SAFETY") || l.contains("# Safety");
            // Same-line marker counts; otherwise walk backwards up to
            // SAFETY_WINDOW lines, stopping at the first line that closes
            // a block (`}` in *code*, so comments can't form barriers) —
            // a SAFETY comment from an earlier scope must not justify
            // this site.
            let mut justified = has_marker(raw_lines[line0]);
            if !justified {
                let masked_lines: Vec<&str> = masked.lines().collect();
                for i in (line0.saturating_sub(SAFETY_WINDOW)..line0).rev() {
                    if has_marker(raw_lines[i]) {
                        justified = true;
                        break;
                    }
                    if masked_lines[i].contains('}') {
                        break;
                    }
                }
            }
            if !justified {
                problems.push(format!(
                    "undocumented unsafe: {}:{line} has no SAFETY justification within the \
                     {SAFETY_WINDOW} preceding lines",
                    f.key
                ));
            }
        }
    }
    problems
}

/// Evaluates a site's `#[cfg(...)]` guard against the active flag set.
/// Supports the two forms the workspace uses: a bare flag name and
/// `not(name)`. Anything else is treated as active (and will then fail
/// as an unknown site unless the policy covers it).
fn cfg_active(cfg: Option<&str>, active: &[&str]) -> bool {
    match cfg {
        None => true,
        Some(c) => {
            let c = c.trim();
            if let Some(inner) = c.strip_prefix("not(").and_then(|r| r.strip_suffix(')')) {
                !active.contains(&inner.trim())
            } else if c.chars().all(|ch| ch.is_alphanumeric() || ch == '_') {
                active.contains(&c)
            } else {
                true
            }
        }
    }
}

/// Cuts the source at the first `#[cfg(...test...)]` attribute line, which
/// in this workspace always introduces the test module. Test-only
/// atomics (loom models, stress harnesses) are out of audit scope.
fn truncate_at_test_module(src: &str) -> &str {
    let mut offset = 0;
    for line in src.split_inclusive('\n') {
        let t = line.trim_start();
        if t.starts_with("#[cfg(") && t.contains("test") {
            return &src[..offset];
        }
        offset += line.len();
    }
    src
}

/// Replaces comments, string literals, and char literals with spaces,
/// preserving byte offsets and newlines so line numbers stay exact.
fn mask_non_code(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                out[i] = b' ';
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        out[i] = b' ';
                        if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                    } else if bytes[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal: 'x' or '\n'. Lifetimes ('a) have no
                // closing quote in range; leave them untouched.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    i + 3
                } else {
                    i + 2
                };
                if bytes.get(close) == Some(&b'\'') {
                    for b in out.iter_mut().take(close + 1).skip(i) {
                        *b = b' ';
                    }
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII spaces")
}

/// Byte offsets where each line begins.
fn line_start_offsets(src: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line number of a byte offset.
fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

/// Per-line cfg guard: a `#[cfg(...)]` attribute line applies to the
/// next non-attribute, non-blank line (the statement-level form the
/// workspace uses, e.g. the weak-pop fence pair and the weak-join
/// counter ops).
fn cfg_by_line(src: &str) -> Vec<Option<String>> {
    let mut out = Vec::new();
    let mut pending: Option<String> = None;
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("#[cfg(") {
            if let Some(inner) = rest.strip_suffix(")]") {
                out.push(None);
                pending = Some(inner.to_string());
                continue;
            }
        }
        if t.starts_with("#[") || t.is_empty() {
            out.push(None);
            continue;
        }
        out.push(pending.take());
    }
    out
}

/// `(offset, name)` of every `fn` item, in order.
fn fn_starts(src: &str) -> Vec<(usize, String)> {
    let bytes = src.as_bytes();
    let mut fns = Vec::new();
    let mut from = 0;
    while let Some(rel) = src[from..].find("fn ") {
        let at = from + rel;
        from = at + 3;
        let prev = src[..at].chars().next_back();
        if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let mut j = at + 3;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j > at + 3 {
            fns.push((at, src[at + 3..j].to_string()));
        }
    }
    fns
}

/// Name of the last `fn` starting before `offset`.
fn enclosing_fn(fns: &[(usize, String)], offset: usize) -> String {
    let idx = fns.partition_point(|(at, _)| *at < offset);
    if idx == 0 {
        "<module>".to_string()
    } else {
        fns[idx - 1].1.clone()
    }
}

/// Walks back from the `.` at `dot` over whitespace and reads the
/// receiver identifier (handles multi-line `stats\n.field\n.store(...)`
/// chains). An indexed receiver (`state.join[s as usize].fetch_sub`)
/// resolves to the indexed field (`join`): the balanced `[...]` suffix
/// is skipped first.
fn receiver_symbol(src: &str, dot: usize) -> Option<String> {
    let bytes = src.as_bytes();
    let mut i = dot;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i > 0 && bytes[i - 1] == b']' {
        let mut depth = 0i32;
        while i > 0 {
            match bytes[i - 1] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                _ => {}
            }
            i -= 1;
        }
    }
    let end = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == end {
        None
    } else {
        Some(src[i..end].to_string())
    }
}

/// Given the offset of an opening `(`, returns the offset of its
/// matching `)`.
fn balanced_span(src: &str, open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, b) in src.bytes().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Ordering identifiers appearing in an argument span, in order. Matches
/// both qualified (`Ordering::SeqCst`) and bare (`SeqCst`) spellings —
/// `stats.rs` imports the variants directly.
fn ordering_idents(span: &str) -> Vec<AtomicOrdering> {
    let bytes = span.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if let Some(o) = AtomicOrdering::parse(&span[start..i]) {
                out.push(o);
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scans_simple_ops_with_fn_and_symbol() {
        let src = "\
fn push(&self) {
    let b = self.bottom.load(Ordering::Relaxed);
    self.bottom.store(b + 1, Ordering::Release);
}
fn check() {
    fence(Ordering::SeqCst);
}
";
        let sites = scan_source("x.rs", src).unwrap();
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].func, "push");
        assert_eq!(sites[0].symbol, "bottom");
        assert_eq!(sites[0].op, AtomicOp::Load);
        assert_eq!(sites[0].orderings, vec![AtomicOrdering::Relaxed]);
        assert_eq!(sites[0].line, 2);
        assert_eq!(sites[2].func, "check");
        assert_eq!(sites[2].symbol, "fence");
        assert_eq!(sites[2].orderings, vec![AtomicOrdering::SeqCst]);
    }

    #[test]
    fn handles_multiline_receivers_and_bare_orderings() {
        let src = "\
fn f(stats: &S) {
    stats
        .idle_ns
        .fetch_add(1, Relaxed);
    let _ = x
        .top
        .compare_exchange(t, t + 1, SeqCst, Relaxed);
}
";
        let sites = scan_source("x.rs", src).unwrap();
        assert_eq!(sites[0].symbol, "idle_ns");
        assert_eq!(sites[0].op, AtomicOp::FetchAdd);
        assert_eq!(sites[1].symbol, "top");
        assert_eq!(
            sites[1].orderings,
            vec![AtomicOrdering::SeqCst, AtomicOrdering::Relaxed]
        );
    }

    #[test]
    fn indexed_receiver_resolves_to_the_indexed_field() {
        let src = "fn run() { if state.join[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {} }";
        let sites = scan_source("x.rs", src).unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].symbol, "join");
        assert_eq!(sites[0].op, AtomicOp::FetchSub);
        let nested = "fn g() { grid[idx[i]].store(1, Ordering::Release); }";
        let sites = scan_source("x.rs", nested).unwrap();
        assert_eq!(sites[0].symbol, "grid");
    }

    #[test]
    fn nested_calls_yield_two_sites_with_right_orderings() {
        let src = "fn grow() { ns.ptr.store(os.ptr.load(Ordering::Acquire), Ordering::Release); }";
        let mut sites = scan_source("x.rs", src).unwrap();
        sites.sort_by_key(|s| s.op.name());
        assert_eq!(sites.len(), 2);
        let load = sites.iter().find(|s| s.op == AtomicOp::Load).unwrap();
        let store = sites.iter().find(|s| s.op == AtomicOp::Store).unwrap();
        assert_eq!(load.orderings, vec![AtomicOrdering::Acquire]);
        assert_eq!(store.orderings, vec![AtomicOrdering::Release]);
    }

    #[test]
    fn masks_comments_strings_and_chars() {
        let src = "\
fn f() {
    // self.fake.load(Ordering::Relaxed)
    let s = \".store(Ordering::SeqCst)\";
    let c = ',';
    real.load(Ordering::Acquire);
}
";
        let sites = scan_source("x.rs", src).unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].symbol, "real");
    }

    #[test]
    fn cfg_attribute_attaches_to_next_statement() {
        let src = "\
fn pop() {
    #[cfg(not(weak))]
    fence(Ordering::SeqCst);
    #[cfg(weak)]
    fence(Ordering::Release);
}
";
        let sites = scan_source("x.rs", src).unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].cfg.as_deref(), Some("not(weak)"));
        assert_eq!(sites[1].cfg.as_deref(), Some("weak"));
        assert!(cfg_active(sites[0].cfg.as_deref(), &[]));
        assert!(!cfg_active(sites[0].cfg.as_deref(), &["weak"]));
        assert!(!cfg_active(sites[1].cfg.as_deref(), &[]));
        assert!(cfg_active(sites[1].cfg.as_deref(), &["weak"]));
    }

    #[test]
    fn test_module_is_out_of_scope() {
        let src = "\
fn f() { a.load(Ordering::Relaxed); }
#[cfg(test)]
mod tests {
    fn t() { b.load(Ordering::SeqCst); }
}
";
        let sites = scan_source("x.rs", src).unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].symbol, "a");
    }

    #[test]
    fn non_atomic_lookalikes_are_skipped_but_arity_still_bites() {
        let src = "fn f() { compiler_fence(Ordering::SeqCst); }";
        assert!(scan_source("x.rs", src).unwrap().is_empty());
        // `Vec::swap` / `mem::swap` style calls carry no Ordering: not
        // atomic sites.
        let vec_swap = "fn f() { v.swap(0, 1); picks.swap(i, j); }";
        assert!(scan_source("x.rs", vec_swap).unwrap().is_empty());
        // But an atomic op with too few orderings is still an error.
        let bad_cas = "fn f() { t.compare_exchange(a, b, Ordering::SeqCst); }";
        assert!(scan_source("x.rs", bad_cas).is_err());
    }

    #[test]
    fn safety_pass_accepts_nearby_markers_and_flags_bare_unsafe() {
        let file = SourceFile {
            key: "x/y.rs".to_string(),
            text: "\
fn ok() {
    // SAFETY: index is bounds-checked above.
    unsafe { do_it() };
}
/// # Safety
/// Caller must uphold the contract.
pub unsafe fn documented() {}
fn bad() {
    unsafe { oops() };
}
"
            .to_string(),
        };
        let problems = audit_safety(&[file]);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("x/y.rs:9"), "{problems:?}");
    }

    #[test]
    fn scan_errors_are_collected_across_files_not_first_only() {
        let dir = std::env::temp_dir().join(format!("nabbitc-lint-scan-{}", std::process::id()));
        let src_a = dir.join("alpha").join("src");
        let src_b = dir.join("beta").join("src");
        std::fs::create_dir_all(&src_a).unwrap();
        std::fs::create_dir_all(&src_b).unwrap();
        // Both files are broken (an atomic op with too few orderings):
        // the scan must report both, not stop at the first.
        std::fs::write(
            src_a.join("a.rs"),
            "fn f() { t.compare_exchange(a, b, Ordering::SeqCst); }",
        )
        .unwrap();
        std::fs::write(
            src_b.join("b.rs"),
            "fn g() { u.compare_exchange(c, d, Ordering::AcqRel); }",
        )
        .unwrap();
        let errs = scan_crates_root(&dir).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("alpha/a.rs")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("beta/b.rs")), "{errs:?}");
    }
}
