//! The committed atomics-ordering policy for the runtime crate.
//!
//! Every entry pins one atomic site (or a group of identical sites) to
//! the ordering sequences it is allowed to use, with a one-line
//! justification. The table is the reviewed ground truth the audit in
//! [`crate::atomics::audit`] checks the scanned sources against:
//!
//! * a scanned site with no entry here fails ("unknown atomic site") —
//!   new atomics must be added to this table, with a reason, to land;
//! * a site whose ordering sequence is not listed fails ("ordering
//!   violation") — this is how the seeded `nabbitc_weak_pop` canary is
//!   caught: the policy for the pop fence allows only `SeqCst`, so the
//!   `Release` variant that cfg enables is rejected statically;
//! * an entry matching no active site fails ("stale policy entry") —
//!   the table cannot outlive the code it describes.
//!
//! Entries are keyed `(file, function, receiver symbol, operation)`.
//! Sites that are textually repeated with the same meaning (e.g. the
//! three `bottom.store(Relaxed)` writes in `pop`) share one entry.
//! Where one key legitimately uses two orderings (the seqlock `seq`
//! field in `trace.rs`), both sequences are listed and the reason says
//! which is which; the audit then cannot distinguish a swap between
//! those two listed sequences, which is acceptable for a seqlock whose
//! safety is separately model-checked.
//!
//! The memory-ordering arguments below reference the Chase–Lev deque
//! correctness argument (Lê et al., "Correct and Efficient Work-Stealing
//! for Weak Memory Models", PPoPP'13) for `deque.rs`, and the loom
//! models in `crates/check` which exhaustively verify the deque and
//! trace-buffer protocols under `--cfg nabbitc_check`.

use crate::atomics::{AtomicOp, AtomicOrdering};

/// One row of the ordering policy: which site(s) it matches, which
/// ordering sequences are allowed, and why.
#[derive(Debug, Clone, Copy)]
pub struct PolicyEntry {
    /// Base file name within the runtime crate (`"deque.rs"`).
    pub file: &'static str,
    /// Enclosing function name.
    pub func: &'static str,
    /// Receiver field/variable, or `"fence"` for fences.
    pub symbol: &'static str,
    /// The operation kind.
    pub op: AtomicOp,
    /// Allowed ordering sequences. A site passes iff its sequence equals
    /// one of these exactly (so `compare_exchange` success/failure pairs
    /// are checked together and downgrades of either fail).
    pub allowed: &'static [&'static [AtomicOrdering]],
    /// One-line justification for the allowed orderings.
    pub why: &'static str,
}

const fn entry(
    file: &'static str,
    func: &'static str,
    symbol: &'static str,
    op: AtomicOp,
    allowed: &'static [&'static [AtomicOrdering]],
    why: &'static str,
) -> PolicyEntry {
    PolicyEntry {
        file,
        func,
        symbol,
        op,
        allowed,
        why,
    }
}

use AtomicOrdering::{AcqRel, Acquire, Relaxed, Release, SeqCst};

// Shorthand sequences so the table below stays one-entry-per-screen-line.
const RLX: &[&[AtomicOrdering]] = &[&[Relaxed]];
const ACQ: &[&[AtomicOrdering]] = &[&[Acquire]];
const REL: &[&[AtomicOrdering]] = &[&[Release]];
const SC: &[&[AtomicOrdering]] = &[&[SeqCst]];
const CAS_SC: &[&[AtomicOrdering]] = &[&[SeqCst, Relaxed]];
const AR: &[&[AtomicOrdering]] = &[&[AcqRel]];

/// The committed policy table. Kept in source order of the audited files
/// so a diff of the runtime and a diff of this table line up.
pub static POLICY: &[PolicyEntry] = &[
    // ---------------------------------------------------------------- deque.rs
    // Chase–Lev deque (PPoPP'13 orderings, verified by the loom model in
    // crates/check).
    entry(
        "deque.rs",
        "len",
        "bottom",
        AtomicOp::Load,
        RLX,
        "advisory size for stats/heuristics; staleness is tolerated by design",
    ),
    entry(
        "deque.rs",
        "len",
        "top",
        AtomicOp::Load,
        RLX,
        "advisory size for stats/heuristics; staleness is tolerated by design",
    ),
    entry(
        "deque.rs",
        "push",
        "bottom",
        AtomicOp::Load,
        RLX,
        "bottom is owner-only; the owner reads its own last store",
    ),
    entry(
        "deque.rs",
        "push",
        "top",
        AtomicOp::Load,
        ACQ,
        "reserves space against concurrent steals; Acquire synchronizes with thieves' top CAS",
    ),
    entry(
        "deque.rs",
        "push",
        "buffer",
        AtomicOp::Load,
        RLX,
        "buffer is replaced only by the owner itself (grow), so its own load needs no ordering",
    ),
    entry(
        "deque.rs",
        "push",
        "w",
        AtomicOp::Store,
        RLX,
        "color-array slot write; published to thieves by the Release fence before the bottom store",
    ),
    entry(
        "deque.rs",
        "push",
        "ptr",
        AtomicOp::Store,
        RLX,
        "task-slot write; published to thieves by the Release fence before the bottom store",
    ),
    entry(
        "deque.rs",
        "push",
        "fence",
        AtomicOp::Fence,
        REL,
        "publishes the slot writes before bottom is advanced (pairs with the thief's SeqCst fence)",
    ),
    entry(
        "deque.rs",
        "push",
        "bottom",
        AtomicOp::Store,
        RLX,
        "the preceding Release fence orders the slot data before this index publication",
    ),
    entry(
        "deque.rs",
        "push_batch",
        "bottom",
        AtomicOp::Load,
        RLX,
        "bottom is owner-only; the owner reads its own last store",
    ),
    entry(
        "deque.rs",
        "push_batch",
        "top",
        AtomicOp::Load,
        ACQ,
        "reserves space for the whole batch against concurrent steals; same edge as push",
    ),
    entry(
        "deque.rs",
        "push_batch",
        "buffer",
        AtomicOp::Load,
        RLX,
        "buffer is replaced only by the owner itself (grow); two sites (initial + post-grow reload)",
    ),
    entry(
        "deque.rs",
        "push_batch",
        "w",
        AtomicOp::Store,
        RLX,
        "color-array writes for the whole batch; published by the single Release fence below",
    ),
    entry(
        "deque.rs",
        "push_batch",
        "ptr",
        AtomicOp::Store,
        RLX,
        "task-slot writes for the whole batch; published by the single Release fence below",
    ),
    entry(
        "deque.rs",
        "push_batch",
        "fence",
        AtomicOp::Fence,
        REL,
        "one fence publishes all N slot writes before the single bottom advance — the point of \
         batched spawn; the nabbitc_weak_push_batch cfg moves the bottom store before the slots \
         and the seeded_push_batch model check proves that is caught as a W2 double take",
    ),
    entry(
        "deque.rs",
        "push_batch",
        "bottom",
        AtomicOp::Store,
        RLX,
        "single index publication for the batch; ordered after the slot writes by the Release fence",
    ),
    entry(
        "deque.rs",
        "pop",
        "bottom",
        AtomicOp::Load,
        RLX,
        "bottom is owner-only; the owner reads its own last store",
    ),
    entry(
        "deque.rs",
        "pop",
        "buffer",
        AtomicOp::Load,
        RLX,
        "buffer is replaced only by the owner itself (grow)",
    ),
    entry(
        "deque.rs",
        "pop",
        "bottom",
        AtomicOp::Store,
        RLX,
        "owner-only index update; ordering against thieves comes from the SeqCst fence and CAS",
    ),
    entry(
        "deque.rs",
        "pop",
        "fence",
        AtomicOp::Fence,
        SC,
        "the PPoPP'13 store-load fence: the bottom decrement must be visible before top is read, \
         or owner and thief can both take the last task; the nabbitc_weak_pop cfg downgrades \
         this to Release and is the seeded bug this audit must reject",
    ),
    entry(
        "deque.rs",
        "pop",
        "top",
        AtomicOp::Load,
        RLX,
        "ordered after the bottom decrement by the SeqCst fence; no payload is read through it",
    ),
    entry(
        "deque.rs",
        "pop",
        "ptr",
        AtomicOp::Load,
        RLX,
        "owner reads a slot it previously wrote; no inter-thread publication involved",
    ),
    entry(
        "deque.rs",
        "pop",
        "top",
        AtomicOp::CompareExchange,
        CAS_SC,
        "last-task race with thieves; SeqCst keeps it in the fence's total order, failure is a \
         pure retry so Relaxed suffices there",
    ),
    entry(
        "deque.rs",
        "steal_impl",
        "top",
        AtomicOp::Load,
        ACQ,
        "thief's first read; synchronizes with the owner's CAS/publication of top",
    ),
    entry(
        "deque.rs",
        "steal_impl",
        "fence",
        AtomicOp::Fence,
        SC,
        "pairs with the pop fence: orders the top read before the bottom read in the single \
         total order, closing the two-claimants window",
    ),
    entry(
        "deque.rs",
        "steal_impl",
        "bottom",
        AtomicOp::Load,
        ACQ,
        "synchronizes with the owner's push publication so the observed range is consistent",
    ),
    entry(
        "deque.rs",
        "steal_impl",
        "buffer",
        AtomicOp::Load,
        ACQ,
        "synchronizes with grow's Release swap so the thief sees fully-initialized storage",
    ),
    entry(
        "deque.rs",
        "steal_impl",
        "a",
        AtomicOp::Load,
        RLX,
        "color-array slot read; made visible by the push fence / buffer Acquire, value is \
         re-validated by the CAS",
    ),
    entry(
        "deque.rs",
        "steal_impl",
        "ptr",
        AtomicOp::Load,
        RLX,
        "task-slot read; made visible by the push fence / buffer Acquire, ownership is only \
         taken if the CAS succeeds",
    ),
    entry(
        "deque.rs",
        "steal_impl",
        "top",
        AtomicOp::CompareExchange,
        CAS_SC,
        "claims the task against owner and other thieves; SeqCst joins the fence order, \
         failure is a pure retry so Relaxed suffices there",
    ),
    entry(
        "deque.rs",
        "steal_batch_impl",
        "top",
        AtomicOp::Load,
        ACQ,
        "two sites: the initial index read and the per-claim revalidation; both synchronize \
         with owner/thief top updates exactly like steal_impl's first read",
    ),
    entry(
        "deque.rs",
        "steal_batch_impl",
        "fence",
        AtomicOp::Fence,
        SC,
        "two sites (initial + per-claim revalidation): same store-load pairing with the pop \
         fence as steal_impl; re-running it before every chained claim is what makes batching \
         sound against concurrent owner pops (see the nabbitc_weak_batch canary)",
    ),
    entry(
        "deque.rs",
        "steal_batch_impl",
        "bottom",
        AtomicOp::Load,
        ACQ,
        "two sites (initial + per-claim revalidation); synchronizes with the owner's push \
         publication so each claim checks a current range, never the stale initial window",
    ),
    entry(
        "deque.rs",
        "steal_batch_impl",
        "buffer",
        AtomicOp::Load,
        ACQ,
        "re-read per claim; synchronizes with grow's Release swap like steal_impl",
    ),
    entry(
        "deque.rs",
        "steal_batch_impl",
        "a",
        AtomicOp::Load,
        RLX,
        "color-array slot read; made visible by the push fence / buffer Acquire, value is \
         re-validated by the claiming CAS",
    ),
    entry(
        "deque.rs",
        "steal_batch_impl",
        "ptr",
        AtomicOp::Load,
        RLX,
        "task-slot read; ownership is only taken if the claiming CAS succeeds",
    ),
    entry(
        "deque.rs",
        "steal_batch_impl",
        "top",
        AtomicOp::CompareExchange,
        CAS_SC,
        "one CAS per claimed task — never a multi-task jump — so owner pops and other thieves \
         contend on the same protocol as single steals; SeqCst joins the fence order, failure \
         aborts the batch (pure retry) so Relaxed suffices there",
    ),
    entry(
        "deque.rs",
        "grow",
        "buffer",
        AtomicOp::Load,
        RLX,
        "grow runs on the owner thread; it reads its own buffer pointer",
    ),
    entry(
        "deque.rs",
        "grow",
        "ptr",
        AtomicOp::Load,
        RLX,
        "copying slots the owner itself wrote; publication happens at the buffer swap",
    ),
    entry(
        "deque.rs",
        "grow",
        "ptr",
        AtomicOp::Store,
        RLX,
        "filling the new buffer before it is published by the Release swap",
    ),
    entry(
        "deque.rs",
        "grow",
        "ow",
        AtomicOp::Load,
        RLX,
        "copying color slots the owner itself wrote; published by the Release swap",
    ),
    entry(
        "deque.rs",
        "grow",
        "nw",
        AtomicOp::Store,
        RLX,
        "filling the new color array before it is published by the Release swap",
    ),
    entry(
        "deque.rs",
        "grow",
        "buffer",
        AtomicOp::Swap,
        REL,
        "publishes the fully-copied buffer; pairs with the thief's Acquire buffer load",
    ),
    entry(
        "deque.rs",
        "drop",
        "buffer",
        AtomicOp::Load,
        RLX,
        "destructor runs with exclusive access (&mut self); no concurrent observers remain",
    ),
    // ------------------------------------------------------------- injector.rs
    entry(
        "injector.rs",
        "push",
        "len",
        AtomicOp::Store,
        REL,
        "mutex-protected length mirror; Release (from SeqCst) pairs with the Acquire hint load \
         so a non-empty hint implies the queue really held work at store time — every decision \
         that matters re-checks under the lock, and a stale-empty hint is benign because the \
         enqueuer wakes workers through the job condvar (run_injector_progress and \
         run_injector_racing_push explore this exhaustively)",
    ),
    entry(
        "injector.rs",
        "try_pop",
        "len",
        AtomicOp::Store,
        REL,
        "length mirror update under the lock; Release for the same hint contract as push",
    ),
    entry(
        "injector.rs",
        "try_pop_batch",
        "len",
        AtomicOp::Store,
        REL,
        "one mirror update for the whole drained batch, under the lock; same hint contract",
    ),
    entry(
        "injector.rs",
        "len",
        "len",
        AtomicOp::Load,
        ACQ,
        "idle-path hint probe polled every worker round; Acquire (from SeqCst) pairs with the \
         Release mirror stores — the hint-only contract above needs nothing stronger, and this \
         load is hot enough to care",
    ),
    // ----------------------------------------------------------------- pool.rs
    entry(
        "pool.rs",
        "next_task_id",
        "task_seq",
        AtomicOp::FetchAdd,
        RLX,
        "unique-id counter; only atomicity is needed, no ordering with other data",
    ),
    entry(
        "pool.rs",
        "run",
        "active",
        AtomicOp::Load,
        SC,
        "job-barrier handshake; the pool control plane uses SeqCst throughout as it is \
         microseconds per job, not per task",
    ),
    entry(
        "pool.rs",
        "run",
        "pending",
        AtomicOp::Load,
        SC,
        "job-barrier handshake (control plane, SeqCst by convention)",
    ),
    entry(
        "pool.rs",
        "run",
        "job_panicked",
        AtomicOp::Store,
        SC,
        "clears the panic flag before publishing a new job (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "run",
        "pending",
        AtomicOp::Store,
        SC,
        "seeds the pending-task count before the epoch bump releases workers (control plane)",
    ),
    entry(
        "pool.rs",
        "run",
        "job_start_ns",
        AtomicOp::Store,
        SC,
        "job start timestamp must be visible to workers when the epoch bump wakes them",
    ),
    entry(
        "pool.rs",
        "run",
        "epoch",
        AtomicOp::FetchAdd,
        SC,
        "the job-release edge: workers spin on epoch, and every job field stored above must \
         be ordered before it (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "run",
        "job_panicked",
        AtomicOp::Load,
        SC,
        "reads the outcome after the completion barrier (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "reset_trace",
        "task_seq",
        AtomicOp::Store,
        RLX,
        "test/bench reset while the pool is quiescent; atomicity only",
    ),
    entry(
        "pool.rs",
        "drop",
        "shutdown",
        AtomicOp::Store,
        SC,
        "shutdown edge observed by worker spin loops (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "spawn",
        "pending",
        AtomicOp::FetchAdd,
        RLX,
        "per-spawn hot path, Relaxed (from SeqCst): the increment precedes the deque push, \
         whose Release fence publishes it to whichever worker acquires the task, so the \
         matching decrement is ordered after it in pending's modification order — the counter \
         can never spuriously hit zero mid-job (run_pending_protocol checks this exhaustively)",
    ),
    entry(
        "pool.rs",
        "drop",
        "pending",
        AtomicOp::FetchAdd,
        RLX,
        "SpawnBatch::drop counts the whole batch before its single push_batch publishes the \
         tasks; same publish-before-decrement argument as spawn",
    ),
    entry(
        "pool.rs",
        "note_arena",
        "arena_hits",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only arena counter mirrored from the worker-owned free list; read after \
         the job barrier",
    ),
    entry(
        "pool.rs",
        "note_arena",
        "arena_misses",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only arena counter; read after the job barrier",
    ),
    entry(
        "pool.rs",
        "note_batch",
        "batch_steals",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only batching counter with no cross-counter invariant (unlike the \
         Release steal-success counters); read after the job barrier",
    ),
    entry(
        "pool.rs",
        "note_batch",
        "batch_stolen_tasks",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only batching counter; read after the job barrier",
    ),
    entry(
        "pool.rs",
        "worker_main",
        "epoch",
        AtomicOp::Load,
        SC,
        "worker spin on the job-release edge (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "worker_main",
        "shutdown",
        AtomicOp::Load,
        SC,
        "worker spin on the shutdown edge (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "worker_main",
        "active",
        AtomicOp::FetchAdd,
        SC,
        "entering a job; the barrier in run() counts active workers (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "worker_main",
        "active",
        AtomicOp::FetchSub,
        SC,
        "leaving a job; pairs with the barrier's active==0 check (control plane, SeqCst)",
    ),
    entry(
        "pool.rs",
        "run_job_loop",
        "job_start_ns",
        AtomicOp::Load,
        SC,
        "reads the job start timestamp published before the epoch bump (control plane)",
    ),
    entry(
        "pool.rs",
        "run_job_loop",
        "first_work_wait_ns",
        AtomicOp::Store,
        RLX,
        "per-worker latency statistic; read only after the job barrier",
    ),
    entry(
        "pool.rs",
        "run_job_loop",
        "pending",
        AtomicOp::Load,
        ACQ,
        "termination check, Acquire (from SeqCst): reading zero means reading the final \
         decrement of the AcqRel fetch_sub release sequence, which synchronizes with every \
         task's effects; a stale nonzero read just loops once more. Two sites (loop head and \
         idle re-check); run_pending_protocol models the full handshake",
    ),
    entry(
        "pool.rs",
        "run_job_loop",
        "idle_ns",
        AtomicOp::FetchAdd,
        RLX,
        "per-worker idle-time statistic; read only after the job barrier",
    ),
    entry(
        "pool.rs",
        "execute",
        "tasks_executed",
        AtomicOp::FetchAdd,
        RLX,
        "per-worker counter; read only after the job barrier",
    ),
    entry(
        "pool.rs",
        "execute",
        "job_panicked",
        AtomicOp::Store,
        SC,
        "panic flag must be visible before the pending count reaches zero (control plane)",
    ),
    entry(
        "pool.rs",
        "execute",
        "pending",
        AtomicOp::FetchSub,
        AR,
        "task completion, AcqRel (from SeqCst): Release publishes this task's effects to \
         whoever reads the counter down the release sequence (the job-done edge), Acquire \
         keeps later recycling ordered after the count; run()'s completion barrier still \
         goes through the done mutex + condvar, not this counter alone",
    ),
    entry(
        "pool.rs",
        "steal_round",
        "pending",
        AtomicOp::Load,
        ACQ,
        "early-out of the forced-steal loop; same release-sequence argument as the \
         run_job_loop termination check",
    ),
    entry(
        "pool.rs",
        "steal_round",
        "first_steal_checks",
        AtomicOp::FetchAdd,
        RLX,
        "steal-heuristic counter; read only after the job barrier",
    ),
    entry(
        "pool.rs",
        "steal_round",
        "colored_steal_attempts",
        AtomicOp::FetchAdd,
        RLX,
        "attempt counter; read only after the job barrier",
    ),
    entry(
        "pool.rs",
        "steal_round",
        "colored_steals",
        AtomicOp::FetchAdd,
        REL,
        "success counter; Release pairs with the Acquire load in WorkerStats::snapshot so \
         steals <= attempts holds in any racy snapshot",
    ),
    entry(
        "pool.rs",
        "steal_round",
        "random_steal_attempts",
        AtomicOp::FetchAdd,
        RLX,
        "attempt counter; read only after the job barrier",
    ),
    entry(
        "pool.rs",
        "steal_round",
        "random_steals",
        AtomicOp::FetchAdd,
        REL,
        "success counter; Release pairs with the Acquire load in WorkerStats::snapshot",
    ),
    // ---------------------------------------------------------------- stats.rs
    entry(
        "stats.rs",
        "reset",
        "tasks_executed",
        AtomicOp::Store,
        RLX,
        "reset happens between jobs while workers are parked; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "colored_steal_attempts",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "colored_steals",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "random_steal_attempts",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "random_steals",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "first_steal_checks",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "first_work_wait_ns",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "idle_ns",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "batch_steals",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "batch_stolen_tasks",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "arena_hits",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "reset",
        "arena_misses",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "colored_steals",
        AtomicOp::Load,
        ACQ,
        "read before the attempt counters; Acquire pairs with the Release increments so a \
         racy snapshot never shows steals > attempts",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "random_steals",
        AtomicOp::Load,
        ACQ,
        "read before the attempt counters; pairs with the Release increments",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "tasks_executed",
        AtomicOp::Load,
        RLX,
        "monotone counter; snapshot tolerates slight staleness",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "colored_steal_attempts",
        AtomicOp::Load,
        RLX,
        "read after the Acquire on successes; may only overshoot, preserving the invariant",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "random_steal_attempts",
        AtomicOp::Load,
        RLX,
        "read after the Acquire on successes; may only overshoot",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "first_steal_checks",
        AtomicOp::Load,
        RLX,
        "heuristic counter; staleness is fine",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "first_work_wait_ns",
        AtomicOp::Load,
        RLX,
        "latency statistic written once per job before the barrier",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "idle_ns",
        AtomicOp::Load,
        RLX,
        "idle-time statistic; staleness is fine",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "batch_steals",
        AtomicOp::Load,
        RLX,
        "reporting-only batching counter; no cross-counter invariant to preserve",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "batch_stolen_tasks",
        AtomicOp::Load,
        RLX,
        "reporting-only batching counter; staleness is fine",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "arena_hits",
        AtomicOp::Load,
        RLX,
        "reporting-only arena counter; staleness is fine",
    ),
    entry(
        "stats.rs",
        "snapshot",
        "arena_misses",
        AtomicOp::Load,
        RLX,
        "reporting-only arena counter; staleness is fine",
    ),
    // ---------------------------------------------------------------- trace.rs
    // Seqlock-style ring buffer (loom-verified in crates/check): writers
    // bump seq to odd (Relaxed, fenced), write the slot, then publish seq
    // even with Release; readers Acquire seq, read, fence, re-check.
    entry(
        "trace.rs",
        "push",
        "head",
        AtomicOp::Load,
        RLX,
        "single-writer cursor; the writer reads its own position",
    ),
    entry(
        "trace.rs",
        "push",
        "seq",
        AtomicOp::Load,
        RLX,
        "writer reads its own slot sequence to compute the odd marker",
    ),
    entry(
        "trace.rs",
        "push",
        "seq",
        AtomicOp::Store,
        &[&[Relaxed], &[Release]],
        "two sites: the odd write-in-progress marker is Relaxed (ordered by the Release \
         fence that follows), the even publish is Release (pairs with the reader's Acquire)",
    ),
    entry(
        "trace.rs",
        "push",
        "fence",
        AtomicOp::Fence,
        REL,
        "orders the odd seq marker before the payload writes for racing readers",
    ),
    entry(
        "trace.rs",
        "push",
        "ts",
        AtomicOp::Store,
        RLX,
        "slot payload; guarded by the seqlock protocol, not by its own ordering",
    ),
    entry(
        "trace.rs",
        "push",
        "payload",
        AtomicOp::Store,
        RLX,
        "slot payload; guarded by the seqlock protocol",
    ),
    entry(
        "trace.rs",
        "push",
        "head",
        AtomicOp::Store,
        REL,
        "publishes the advanced cursor; pairs with recorded()'s Acquire",
    ),
    entry(
        "trace.rs",
        "recorded",
        "head",
        AtomicOp::Load,
        ACQ,
        "pairs with the writer's Release so the count never runs ahead of published slots",
    ),
    entry(
        "trace.rs",
        "snapshot",
        "seq",
        AtomicOp::Load,
        &[&[Acquire], &[Relaxed]],
        "two sites: the first read is Acquire (pairs with the even Release publish), the \
         post-fence re-check is Relaxed (the Acquire fence before it orders the payload reads)",
    ),
    entry(
        "trace.rs",
        "snapshot",
        "ts",
        AtomicOp::Load,
        RLX,
        "payload read validated by the seq re-check; torn reads are discarded",
    ),
    entry(
        "trace.rs",
        "snapshot",
        "payload",
        AtomicOp::Load,
        RLX,
        "payload read validated by the seq re-check",
    ),
    entry(
        "trace.rs",
        "snapshot",
        "fence",
        AtomicOp::Fence,
        ACQ,
        "orders the payload reads before the seq re-check (reader half of the seqlock)",
    ),
    entry(
        "trace.rs",
        "reset",
        "head",
        AtomicOp::Store,
        REL,
        "publishes the cleared buffer state to subsequent readers",
    ),
];
