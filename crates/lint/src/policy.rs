//! The committed atomics-ordering policy for the workspace.
//!
//! Every entry pins one atomic site (or a group of identical sites) to
//! the ordering sequences it is allowed to use, with a one-line
//! justification. The table is the reviewed ground truth the audit in
//! [`crate::atomics::audit`] checks the scanned sources against:
//!
//! * a scanned site with no entry here fails ("unknown atomic site") —
//!   new atomics must be added to this table, with a reason, to land;
//! * a site whose ordering sequence is not listed fails ("ordering
//!   violation") — this is how the seeded `nabbitc_weak_pop` canary is
//!   caught: the policy for the pop fence allows only `SeqCst`, so the
//!   `Release` variant that cfg enables is rejected statically;
//! * an entry matching no active site fails ("stale policy entry") —
//!   the table cannot outlive the code it describes.
//!
//! Entries are keyed `(file, function, receiver symbol, operation)`,
//! where `file` is the crate-qualified key the workspace scan produces
//! (`"runtime/deque.rs"`, `"core/join.rs"`). Harness files (the model
//! checker, the bench scaffolding) are covered by [`SCAN_ALLOWLIST`]
//! instead of per-site entries, and the facade-conformance pass's
//! justified exceptions live in [`FACADE_EXEMPT`].
//! Sites that are textually repeated with the same meaning (e.g. the
//! three `bottom.store(Relaxed)` writes in `pop`) share one entry.
//! Where one key legitimately uses two orderings (the seqlock `seq`
//! field in `trace.rs`), both sequences are listed and the reason says
//! which is which; the audit then cannot distinguish a swap between
//! those two listed sequences, which is acceptable for a seqlock whose
//! safety is separately model-checked.
//!
//! The memory-ordering arguments below reference the Chase–Lev deque
//! correctness argument (Lê et al., "Correct and Efficient Work-Stealing
//! for Weak Memory Models", PPoPP'13) for `deque.rs`, and the loom
//! models in `crates/check` which exhaustively verify the deque,
//! trace-buffer, pending-counter, and join-counter protocols under
//! `--cfg nabbitc_check`.

use crate::atomics::{AtomicOp, AtomicOrdering};

/// One row of the ordering policy: which site(s) it matches, which
/// ordering sequences are allowed, and why.
#[derive(Debug, Clone, Copy)]
pub struct PolicyEntry {
    /// Crate-qualified file key: crate directory name plus the path
    /// relative to its `src/` (`"runtime/deque.rs"`, `"core/join.rs"`).
    pub file: &'static str,
    /// Enclosing function name.
    pub func: &'static str,
    /// Receiver field/variable, or `"fence"` for fences.
    pub symbol: &'static str,
    /// The operation kind.
    pub op: AtomicOp,
    /// Allowed ordering sequences. A site passes iff its sequence equals
    /// one of these exactly (so `compare_exchange` success/failure pairs
    /// are checked together and downgrades of either fail).
    pub allowed: &'static [&'static [AtomicOrdering]],
    /// Keys of the release-capable policy entries this site's Acquire
    /// side synchronizes with (`"runtime/deque.rs::push::fence.fence"`).
    /// Mandatory for entries with Acquire/AcqRel semantics; entries with
    /// Release semantics must be *named* by someone. Verified by
    /// [`crate::atomics::audit_pairs`].
    pub pairs_with: &'static [&'static str],
    /// One-line justification for the allowed orderings.
    pub why: &'static str,
}

const fn entry(
    file: &'static str,
    func: &'static str,
    symbol: &'static str,
    op: AtomicOp,
    allowed: &'static [&'static [AtomicOrdering]],
    why: &'static str,
) -> PolicyEntry {
    PolicyEntry {
        file,
        func,
        symbol,
        op,
        allowed,
        pairs_with: &[],
        why,
    }
}

/// [`entry`] plus a declared publication pair: the `pairs_with` keys
/// name the Release-side entries this site's Acquire synchronizes with.
const fn pentry(
    file: &'static str,
    func: &'static str,
    symbol: &'static str,
    op: AtomicOp,
    allowed: &'static [&'static [AtomicOrdering]],
    pairs_with: &'static [&'static str],
    why: &'static str,
) -> PolicyEntry {
    PolicyEntry {
        file,
        func,
        symbol,
        op,
        allowed,
        pairs_with,
        why,
    }
}

use AtomicOrdering::{AcqRel, Acquire, Relaxed, Release, SeqCst};

// Shorthand sequences so the table below stays one-entry-per-screen-line.
const RLX: &[&[AtomicOrdering]] = &[&[Relaxed]];
const ACQ: &[&[AtomicOrdering]] = &[&[Acquire]];
const REL: &[&[AtomicOrdering]] = &[&[Release]];
const SC: &[&[AtomicOrdering]] = &[&[SeqCst]];
const CAS_SC: &[&[AtomicOrdering]] = &[&[SeqCst, Relaxed]];
const AR: &[&[AtomicOrdering]] = &[&[AcqRel]];

/// The committed policy table. Kept in source order of the audited files
/// so a diff of the runtime and a diff of this table line up.
pub static POLICY: &[PolicyEntry] = &[
    // ---------------------------------------------------------------- deque.rs
    // Chase–Lev deque (PPoPP'13 orderings, verified by the loom model in
    // crates/check).
    entry(
        "runtime/deque.rs",
        "len",
        "bottom",
        AtomicOp::Load,
        RLX,
        "advisory size for stats/heuristics; staleness is tolerated by design",
    ),
    entry(
        "runtime/deque.rs",
        "len",
        "top",
        AtomicOp::Load,
        RLX,
        "advisory size for stats/heuristics; staleness is tolerated by design",
    ),
    entry(
        "runtime/deque.rs",
        "push",
        "bottom",
        AtomicOp::Load,
        RLX,
        "bottom is owner-only; the owner reads its own last store",
    ),
    pentry(
        "runtime/deque.rs",
        "push",
        "top",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::pop::top.compare_exchange",
            "runtime/deque.rs::steal_impl::top.compare_exchange",
            "runtime/deque.rs::steal_batch_impl::top.compare_exchange",
        ],
        "reserves space against concurrent steals; Acquire synchronizes with thieves' top CAS",
    ),
    entry(
        "runtime/deque.rs",
        "push",
        "buffer",
        AtomicOp::Load,
        RLX,
        "buffer is replaced only by the owner itself (grow), so its own load needs no ordering",
    ),
    entry(
        "runtime/deque.rs",
        "push",
        "w",
        AtomicOp::Store,
        RLX,
        "color-array slot write; published to thieves by the Release fence before the bottom store",
    ),
    entry(
        "runtime/deque.rs",
        "push",
        "ptr",
        AtomicOp::Store,
        RLX,
        "task-slot write; published to thieves by the Release fence before the bottom store",
    ),
    entry(
        "runtime/deque.rs",
        "push",
        "fence",
        AtomicOp::Fence,
        REL,
        "publishes the slot writes before bottom is advanced (pairs with the thief's SeqCst fence)",
    ),
    entry(
        "runtime/deque.rs",
        "push",
        "bottom",
        AtomicOp::Store,
        RLX,
        "the preceding Release fence orders the slot data before this index publication",
    ),
    entry(
        "runtime/deque.rs",
        "push_batch",
        "bottom",
        AtomicOp::Load,
        RLX,
        "bottom is owner-only; the owner reads its own last store",
    ),
    pentry(
        "runtime/deque.rs",
        "push_batch",
        "top",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::pop::top.compare_exchange",
            "runtime/deque.rs::steal_impl::top.compare_exchange",
            "runtime/deque.rs::steal_batch_impl::top.compare_exchange",
        ],
        "reserves space for the whole batch against concurrent steals; same edge as push",
    ),
    entry(
        "runtime/deque.rs",
        "push_batch",
        "buffer",
        AtomicOp::Load,
        RLX,
        "buffer is replaced only by the owner itself (grow); two sites (initial + post-grow reload)",
    ),
    entry(
        "runtime/deque.rs",
        "push_batch",
        "w",
        AtomicOp::Store,
        RLX,
        "color-array writes for the whole batch; published by the single Release fence below",
    ),
    entry(
        "runtime/deque.rs",
        "push_batch",
        "ptr",
        AtomicOp::Store,
        RLX,
        "task-slot writes for the whole batch; published by the single Release fence below",
    ),
    entry(
        "runtime/deque.rs",
        "push_batch",
        "fence",
        AtomicOp::Fence,
        REL,
        "one fence publishes all N slot writes before the single bottom advance — the point of \
         batched spawn; the nabbitc_weak_push_batch cfg moves the bottom store before the slots \
         and the seeded_push_batch model check proves that is caught as a W2 double take",
    ),
    entry(
        "runtime/deque.rs",
        "push_batch",
        "bottom",
        AtomicOp::Store,
        RLX,
        "single index publication for the batch; ordered after the slot writes by the Release fence",
    ),
    entry(
        "runtime/deque.rs",
        "pop",
        "bottom",
        AtomicOp::Load,
        RLX,
        "bottom is owner-only; the owner reads its own last store",
    ),
    entry(
        "runtime/deque.rs",
        "pop",
        "buffer",
        AtomicOp::Load,
        RLX,
        "buffer is replaced only by the owner itself (grow)",
    ),
    entry(
        "runtime/deque.rs",
        "pop",
        "bottom",
        AtomicOp::Store,
        RLX,
        "owner-only index update; ordering against thieves comes from the SeqCst fence and CAS",
    ),
    entry(
        "runtime/deque.rs",
        "pop",
        "fence",
        AtomicOp::Fence,
        SC,
        "the PPoPP'13 store-load fence: the bottom decrement must be visible before top is read, \
         or owner and thief can both take the last task; the nabbitc_weak_pop cfg downgrades \
         this to Release and is the seeded bug this audit must reject",
    ),
    entry(
        "runtime/deque.rs",
        "pop",
        "top",
        AtomicOp::Load,
        RLX,
        "ordered after the bottom decrement by the SeqCst fence; no payload is read through it",
    ),
    entry(
        "runtime/deque.rs",
        "pop",
        "ptr",
        AtomicOp::Load,
        RLX,
        "owner reads a slot it previously wrote; no inter-thread publication involved",
    ),
    entry(
        "runtime/deque.rs",
        "pop",
        "top",
        AtomicOp::CompareExchange,
        CAS_SC,
        "last-task race with thieves; SeqCst keeps it in the fence's total order, failure is a \
         pure retry so Relaxed suffices there",
    ),
    pentry(
        "runtime/deque.rs",
        "steal_impl",
        "top",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::pop::top.compare_exchange",
            "runtime/deque.rs::steal_impl::top.compare_exchange",
            "runtime/deque.rs::steal_batch_impl::top.compare_exchange",
        ],
        "thief's first read; synchronizes with the owner's CAS/publication of top",
    ),
    entry(
        "runtime/deque.rs",
        "steal_impl",
        "fence",
        AtomicOp::Fence,
        SC,
        "pairs with the pop fence: orders the top read before the bottom read in the single \
         total order, closing the two-claimants window",
    ),
    pentry(
        "runtime/deque.rs",
        "steal_impl",
        "bottom",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::push::fence.fence",
            "runtime/deque.rs::push_batch::fence.fence",
        ],
        "synchronizes with the owner's push publication so the observed range is consistent",
    ),
    pentry(
        "runtime/deque.rs",
        "steal_impl",
        "buffer",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::grow::buffer.swap",
        ],
        "synchronizes with grow's Release swap so the thief sees fully-initialized storage",
    ),
    entry(
        "runtime/deque.rs",
        "steal_impl",
        "a",
        AtomicOp::Load,
        RLX,
        "color-array slot read; made visible by the push fence / buffer Acquire, value is \
         re-validated by the CAS",
    ),
    entry(
        "runtime/deque.rs",
        "steal_impl",
        "ptr",
        AtomicOp::Load,
        RLX,
        "task-slot read; made visible by the push fence / buffer Acquire, ownership is only \
         taken if the CAS succeeds",
    ),
    entry(
        "runtime/deque.rs",
        "steal_impl",
        "top",
        AtomicOp::CompareExchange,
        CAS_SC,
        "claims the task against owner and other thieves; SeqCst joins the fence order, \
         failure is a pure retry so Relaxed suffices there",
    ),
    pentry(
        "runtime/deque.rs",
        "steal_batch_impl",
        "top",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::pop::top.compare_exchange",
            "runtime/deque.rs::steal_impl::top.compare_exchange",
            "runtime/deque.rs::steal_batch_impl::top.compare_exchange",
        ],
        "two sites: the initial index read and the per-claim revalidation; both synchronize \
         with owner/thief top updates exactly like steal_impl's first read",
    ),
    entry(
        "runtime/deque.rs",
        "steal_batch_impl",
        "fence",
        AtomicOp::Fence,
        SC,
        "two sites (initial + per-claim revalidation): same store-load pairing with the pop \
         fence as steal_impl; re-running it before every chained claim is what makes batching \
         sound against concurrent owner pops (see the nabbitc_weak_batch canary)",
    ),
    pentry(
        "runtime/deque.rs",
        "steal_batch_impl",
        "bottom",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::push::fence.fence",
            "runtime/deque.rs::push_batch::fence.fence",
        ],
        "two sites (initial + per-claim revalidation); synchronizes with the owner's push \
         publication so each claim checks a current range, never the stale initial window",
    ),
    pentry(
        "runtime/deque.rs",
        "steal_batch_impl",
        "buffer",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/deque.rs::grow::buffer.swap",
        ],
        "re-read per claim; synchronizes with grow's Release swap like steal_impl",
    ),
    entry(
        "runtime/deque.rs",
        "steal_batch_impl",
        "a",
        AtomicOp::Load,
        RLX,
        "color-array slot read; made visible by the push fence / buffer Acquire, value is \
         re-validated by the claiming CAS",
    ),
    entry(
        "runtime/deque.rs",
        "steal_batch_impl",
        "ptr",
        AtomicOp::Load,
        RLX,
        "task-slot read; ownership is only taken if the claiming CAS succeeds",
    ),
    entry(
        "runtime/deque.rs",
        "steal_batch_impl",
        "top",
        AtomicOp::CompareExchange,
        CAS_SC,
        "one CAS per claimed task — never a multi-task jump — so owner pops and other thieves \
         contend on the same protocol as single steals; SeqCst joins the fence order, failure \
         aborts the batch (pure retry) so Relaxed suffices there",
    ),
    entry(
        "runtime/deque.rs",
        "grow",
        "buffer",
        AtomicOp::Load,
        RLX,
        "grow runs on the owner thread; it reads its own buffer pointer",
    ),
    entry(
        "runtime/deque.rs",
        "grow",
        "ptr",
        AtomicOp::Load,
        RLX,
        "copying slots the owner itself wrote; publication happens at the buffer swap",
    ),
    entry(
        "runtime/deque.rs",
        "grow",
        "ptr",
        AtomicOp::Store,
        RLX,
        "filling the new buffer before it is published by the Release swap",
    ),
    entry(
        "runtime/deque.rs",
        "grow",
        "ow",
        AtomicOp::Load,
        RLX,
        "copying color slots the owner itself wrote; published by the Release swap",
    ),
    entry(
        "runtime/deque.rs",
        "grow",
        "nw",
        AtomicOp::Store,
        RLX,
        "filling the new color array before it is published by the Release swap",
    ),
    entry(
        "runtime/deque.rs",
        "grow",
        "buffer",
        AtomicOp::Swap,
        REL,
        "publishes the fully-copied buffer; pairs with the thief's Acquire buffer load",
    ),
    entry(
        "runtime/deque.rs",
        "drop",
        "buffer",
        AtomicOp::Load,
        RLX,
        "destructor runs with exclusive access (&mut self); no concurrent observers remain",
    ),
    // ------------------------------------------------------------- injector.rs
    entry(
        "runtime/injector.rs",
        "push",
        "len",
        AtomicOp::Store,
        REL,
        "mutex-protected length mirror; Release (from SeqCst) pairs with the Acquire hint load \
         so a non-empty hint implies the queue really held work at store time — every decision \
         that matters re-checks under the lock, and a stale-empty hint is benign because the \
         enqueuer wakes workers through the job condvar (run_injector_progress and \
         run_injector_racing_push explore this exhaustively)",
    ),
    entry(
        "runtime/injector.rs",
        "try_pop",
        "len",
        AtomicOp::Store,
        REL,
        "length mirror update under the lock; Release for the same hint contract as push",
    ),
    entry(
        "runtime/injector.rs",
        "try_pop_batch",
        "len",
        AtomicOp::Store,
        REL,
        "one mirror update for the whole drained batch, under the lock; same hint contract",
    ),
    pentry(
        "runtime/injector.rs",
        "len",
        "len",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/injector.rs::push::len.store",
            "runtime/injector.rs::try_pop::len.store",
            "runtime/injector.rs::try_pop_batch::len.store",
        ],
        "idle-path hint probe polled every worker round; Acquire (from SeqCst) pairs with the \
         Release mirror stores — the hint-only contract above needs nothing stronger, and this \
         load is hot enough to care",
    ),
    // ----------------------------------------------------------------- pool.rs
    entry(
        "runtime/pool.rs",
        "next_task_id",
        "task_seq",
        AtomicOp::FetchAdd,
        RLX,
        "unique-id counter; only atomicity is needed, no ordering with other data",
    ),
    entry(
        "runtime/pool.rs",
        "run",
        "active",
        AtomicOp::Load,
        SC,
        "job-barrier handshake; the pool control plane uses SeqCst throughout as it is \
         microseconds per job, not per task",
    ),
    entry(
        "runtime/pool.rs",
        "run",
        "pending",
        AtomicOp::Load,
        SC,
        "job-barrier handshake (control plane, SeqCst by convention)",
    ),
    entry(
        "runtime/pool.rs",
        "run",
        "job_panicked",
        AtomicOp::Store,
        SC,
        "clears the panic flag before publishing a new job (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "run",
        "pending",
        AtomicOp::Store,
        SC,
        "seeds the pending-task count before the epoch bump releases workers (control plane)",
    ),
    entry(
        "runtime/pool.rs",
        "run",
        "job_start_ns",
        AtomicOp::Store,
        SC,
        "job start timestamp must be visible to workers when the epoch bump wakes them",
    ),
    entry(
        "runtime/pool.rs",
        "run",
        "epoch",
        AtomicOp::FetchAdd,
        SC,
        "the job-release edge: workers spin on epoch, and every job field stored above must \
         be ordered before it (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "run",
        "job_panicked",
        AtomicOp::Load,
        SC,
        "reads the outcome after the completion barrier (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "reset_trace",
        "task_seq",
        AtomicOp::Store,
        RLX,
        "test/bench reset while the pool is quiescent; atomicity only",
    ),
    entry(
        "runtime/pool.rs",
        "drop",
        "shutdown",
        AtomicOp::Store,
        SC,
        "shutdown edge observed by worker spin loops (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "spawn",
        "pending",
        AtomicOp::FetchAdd,
        RLX,
        "per-spawn hot path, Relaxed (from SeqCst): the increment precedes the deque push, \
         whose Release fence publishes it to whichever worker acquires the task, so the \
         matching decrement is ordered after it in pending's modification order — the counter \
         can never spuriously hit zero mid-job (run_pending_protocol checks this exhaustively)",
    ),
    entry(
        "runtime/pool.rs",
        "drop",
        "pending",
        AtomicOp::FetchAdd,
        RLX,
        "SpawnBatch::drop counts the whole batch before its single push_batch publishes the \
         tasks; same publish-before-decrement argument as spawn",
    ),
    entry(
        "runtime/pool.rs",
        "note_arena",
        "arena_hits",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only arena counter mirrored from the worker-owned free list; read after \
         the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "note_arena",
        "arena_misses",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only arena counter; read after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "note_batch",
        "batch_steals",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only batching counter with no cross-counter invariant (unlike the \
         Release steal-success counters); read after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "note_batch",
        "batch_stolen_tasks",
        AtomicOp::FetchAdd,
        RLX,
        "reporting-only batching counter; read after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "worker_main",
        "epoch",
        AtomicOp::Load,
        SC,
        "worker spin on the job-release edge (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "worker_main",
        "shutdown",
        AtomicOp::Load,
        SC,
        "worker spin on the shutdown edge (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "worker_main",
        "active",
        AtomicOp::FetchAdd,
        SC,
        "entering a job; the barrier in run() counts active workers (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "worker_main",
        "active",
        AtomicOp::FetchSub,
        SC,
        "leaving a job; pairs with the barrier's active==0 check (control plane, SeqCst)",
    ),
    entry(
        "runtime/pool.rs",
        "run_job_loop",
        "job_start_ns",
        AtomicOp::Load,
        SC,
        "reads the job start timestamp published before the epoch bump (control plane)",
    ),
    entry(
        "runtime/pool.rs",
        "run_job_loop",
        "first_work_wait_ns",
        AtomicOp::Store,
        RLX,
        "per-worker latency statistic; read only after the job barrier",
    ),
    pentry(
        "runtime/pool.rs",
        "run_job_loop",
        "pending",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/pool.rs::execute::pending.fetch_sub",
        ],
        "termination check, Acquire (from SeqCst): reading zero means reading the final \
         decrement of the AcqRel fetch_sub release sequence, which synchronizes with every \
         task's effects; a stale nonzero read just loops once more. Two sites (loop head and \
         idle re-check); run_pending_protocol models the full handshake",
    ),
    entry(
        "runtime/pool.rs",
        "run_job_loop",
        "idle_ns",
        AtomicOp::FetchAdd,
        RLX,
        "per-worker idle-time statistic; read only after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "execute",
        "tasks_executed",
        AtomicOp::FetchAdd,
        RLX,
        "per-worker counter; read only after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "execute",
        "job_panicked",
        AtomicOp::Store,
        SC,
        "panic flag must be visible before the pending count reaches zero (control plane)",
    ),
    pentry(
        "runtime/pool.rs",
        "execute",
        "pending",
        AtomicOp::FetchSub,
        AR,
        &[
            "runtime/pool.rs::execute::pending.fetch_sub",
        ],
        "task completion, AcqRel (from SeqCst): Release publishes this task's effects to \
         whoever reads the counter down the release sequence (the job-done edge), Acquire \
         keeps later recycling ordered after the count; run()'s completion barrier still \
         goes through the done mutex + condvar, not this counter alone",
    ),
    pentry(
        "runtime/pool.rs",
        "steal_round",
        "pending",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/pool.rs::execute::pending.fetch_sub",
        ],
        "early-out of the forced-steal loop; same release-sequence argument as the \
         run_job_loop termination check",
    ),
    entry(
        "runtime/pool.rs",
        "steal_round",
        "first_steal_checks",
        AtomicOp::FetchAdd,
        RLX,
        "steal-heuristic counter; read only after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "steal_round",
        "colored_steal_attempts",
        AtomicOp::FetchAdd,
        RLX,
        "attempt counter; read only after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "steal_round",
        "colored_steals",
        AtomicOp::FetchAdd,
        REL,
        "success counter; Release pairs with the Acquire load in WorkerStats::snapshot so \
         steals <= attempts holds in any racy snapshot",
    ),
    entry(
        "runtime/pool.rs",
        "steal_round",
        "random_steal_attempts",
        AtomicOp::FetchAdd,
        RLX,
        "attempt counter; read only after the job barrier",
    ),
    entry(
        "runtime/pool.rs",
        "steal_round",
        "random_steals",
        AtomicOp::FetchAdd,
        REL,
        "success counter; Release pairs with the Acquire load in WorkerStats::snapshot",
    ),
    // ---------------------------------------------------------------- stats.rs
    entry(
        "runtime/stats.rs",
        "reset",
        "tasks_executed",
        AtomicOp::Store,
        RLX,
        "reset happens between jobs while workers are parked; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "colored_steal_attempts",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "colored_steals",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "random_steal_attempts",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "random_steals",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "first_steal_checks",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "first_work_wait_ns",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "idle_ns",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "batch_steals",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "batch_stolen_tasks",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "arena_hits",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    entry(
        "runtime/stats.rs",
        "reset",
        "arena_misses",
        AtomicOp::Store,
        RLX,
        "quiescent reset; atomicity only",
    ),
    pentry(
        "runtime/stats.rs",
        "snapshot",
        "colored_steals",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/pool.rs::steal_round::colored_steals.fetch_add",
        ],
        "read before the attempt counters; Acquire pairs with the Release increments so a \
         racy snapshot never shows steals > attempts",
    ),
    pentry(
        "runtime/stats.rs",
        "snapshot",
        "random_steals",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/pool.rs::steal_round::random_steals.fetch_add",
        ],
        "read before the attempt counters; pairs with the Release increments",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "tasks_executed",
        AtomicOp::Load,
        RLX,
        "monotone counter; snapshot tolerates slight staleness",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "colored_steal_attempts",
        AtomicOp::Load,
        RLX,
        "read after the Acquire on successes; may only overshoot, preserving the invariant",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "random_steal_attempts",
        AtomicOp::Load,
        RLX,
        "read after the Acquire on successes; may only overshoot",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "first_steal_checks",
        AtomicOp::Load,
        RLX,
        "heuristic counter; staleness is fine",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "first_work_wait_ns",
        AtomicOp::Load,
        RLX,
        "latency statistic written once per job before the barrier",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "idle_ns",
        AtomicOp::Load,
        RLX,
        "idle-time statistic; staleness is fine",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "batch_steals",
        AtomicOp::Load,
        RLX,
        "reporting-only batching counter; no cross-counter invariant to preserve",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "batch_stolen_tasks",
        AtomicOp::Load,
        RLX,
        "reporting-only batching counter; staleness is fine",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "arena_hits",
        AtomicOp::Load,
        RLX,
        "reporting-only arena counter; staleness is fine",
    ),
    entry(
        "runtime/stats.rs",
        "snapshot",
        "arena_misses",
        AtomicOp::Load,
        RLX,
        "reporting-only arena counter; staleness is fine",
    ),
    // ---------------------------------------------------------------- trace.rs
    // Seqlock-style ring buffer (loom-verified in crates/check): writers
    // bump seq to odd (Relaxed, fenced), write the slot, then publish seq
    // even with Release; readers Acquire seq, read, fence, re-check.
    entry(
        "runtime/trace.rs",
        "push",
        "head",
        AtomicOp::Load,
        RLX,
        "single-writer cursor; the writer reads its own position",
    ),
    entry(
        "runtime/trace.rs",
        "push",
        "seq",
        AtomicOp::Load,
        RLX,
        "writer reads its own slot sequence to compute the odd marker",
    ),
    entry(
        "runtime/trace.rs",
        "push",
        "seq",
        AtomicOp::Store,
        &[&[Relaxed], &[Release]],
        "two sites: the odd write-in-progress marker is Relaxed (ordered by the Release \
         fence that follows), the even publish is Release (pairs with the reader's Acquire)",
    ),
    entry(
        "runtime/trace.rs",
        "push",
        "fence",
        AtomicOp::Fence,
        REL,
        "orders the odd seq marker before the payload writes for racing readers",
    ),
    entry(
        "runtime/trace.rs",
        "push",
        "ts",
        AtomicOp::Store,
        RLX,
        "slot payload; guarded by the seqlock protocol, not by its own ordering",
    ),
    entry(
        "runtime/trace.rs",
        "push",
        "payload",
        AtomicOp::Store,
        RLX,
        "slot payload; guarded by the seqlock protocol",
    ),
    entry(
        "runtime/trace.rs",
        "push",
        "head",
        AtomicOp::Store,
        REL,
        "publishes the advanced cursor; pairs with recorded()'s Acquire",
    ),
    pentry(
        "runtime/trace.rs",
        "recorded",
        "head",
        AtomicOp::Load,
        ACQ,
        &[
            "runtime/trace.rs::push::head.store",
            "runtime/trace.rs::reset::head.store",
        ],
        "pairs with the writer's Release so the count never runs ahead of published slots",
    ),
    pentry(
        "runtime/trace.rs",
        "snapshot",
        "seq",
        AtomicOp::Load,
        &[&[Acquire], &[Relaxed]],
        &[
            "runtime/trace.rs::push::seq.store",
        ],
        "two sites: the first read is Acquire (pairs with the even Release publish), the \
         post-fence re-check is Relaxed (the Acquire fence before it orders the payload reads)",
    ),
    entry(
        "runtime/trace.rs",
        "snapshot",
        "ts",
        AtomicOp::Load,
        RLX,
        "payload read validated by the seq re-check; torn reads are discarded",
    ),
    entry(
        "runtime/trace.rs",
        "snapshot",
        "payload",
        AtomicOp::Load,
        RLX,
        "payload read validated by the seq re-check",
    ),
    pentry(
        "runtime/trace.rs",
        "snapshot",
        "fence",
        AtomicOp::Fence,
        ACQ,
        &[
            "runtime/trace.rs::push::fence.fence",
        ],
        "orders the payload reads before the seq re-check (reader half of the seqlock)",
    ),
    entry(
        "runtime/trace.rs",
        "reset",
        "head",
        AtomicOp::Store,
        REL,
        "publishes the cleared buffer state to subsequent readers",
    ),
    // ------------------------------------------------------------ core/dynamic.rs
    entry(
        "core/dynamic.rs",
        "execute",
        "executed",
        AtomicOp::Load,
        SC,
        "post-run accounting read after the pool job barrier; SeqCst keeps the quiescence \
         count exact and costs nothing off the hot path",
    ),
    entry(
        "core/dynamic.rs",
        "compute_and_notify",
        "executed",
        AtomicOp::FetchAdd,
        RLX,
        "per-node completion counter read only after the job barrier; atomicity only",
    ),
    // --------------------------------------------------------------- core/join.rs
    // The dynamic protocol's init-bias join counter (exactly-once enqueue
    // verified by run_join_protocol in crates/check; the nabbitc_weak_join
    // canary drops the bias and relaxes the scan side, and must be
    // rejected here statically).
    entry(
        "core/join.rs",
        "begin_scan",
        "count",
        AtomicOp::Store,
        SC,
        "seeds preds+1 (the init bias) before the node is published to any predecessor's \
         successor list; it races nothing but anchors the decrement chain — the \
         nabbitc_weak_join cfg drops the bias and downgrades this to Relaxed, which this \
         entry rejects",
    ),
    pentry(
        "core/join.rs",
        "end_scan",
        "count",
        AtomicOp::FetchSub,
        AR,
        &[
            "core/join.rs::notify::count.fetch_sub",
            "core/join.rs::begin_scan::count.store",
        ],
        "releases the bias plus already-satisfied dependences in one RMW; Acquire on the \
         firing decrement synchronizes with every predecessor's Release in the chain — \
         the nabbitc_weak_join cfg downgrades this to Relaxed, rejected here",
    ),
    pentry(
        "core/join.rs",
        "notify",
        "count",
        AtomicOp::FetchSub,
        AR,
        &[
            "core/join.rs::begin_scan::count.store",
            "core/join.rs::notify::count.fetch_sub",
        ],
        "per-predecessor decrement: Release publishes the predecessor's computed effects \
         into the release sequence (including its own prior decrements, hence the self \
         pair), Acquire on the firing decrement observes them all",
    ),
    entry(
        "core/join.rs",
        "pending",
        "count",
        AtomicOp::Load,
        SC,
        "diagnostics read (a computed node must show zero); off the hot path",
    ),
    // ------------------------------------------------------------ core/metrics.rs
    entry(
        "core/metrics.rs",
        "record_node",
        "node_total",
        AtomicOp::FetchAdd,
        RLX,
        "NUMA-remoteness counter aggregated after the run; atomicity only",
    ),
    entry(
        "core/metrics.rs",
        "record_node",
        "node_remote",
        AtomicOp::FetchAdd,
        RLX,
        "NUMA-remoteness counter aggregated after the run; atomicity only",
    ),
    entry(
        "core/metrics.rs",
        "record_node",
        "pred_total",
        AtomicOp::FetchAdd,
        RLX,
        "per-predecessor traffic counter aggregated after the run; atomicity only",
    ),
    entry(
        "core/metrics.rs",
        "record_node",
        "pred_remote",
        AtomicOp::FetchAdd,
        RLX,
        "per-predecessor traffic counter aggregated after the run; atomicity only",
    ),
    entry(
        "core/metrics.rs",
        "report",
        "node_total",
        AtomicOp::Load,
        RLX,
        "post-run aggregation; the counters are quiescent once the job barrier passed",
    ),
    entry(
        "core/metrics.rs",
        "report",
        "node_remote",
        AtomicOp::Load,
        RLX,
        "post-run aggregation over quiescent counters",
    ),
    entry(
        "core/metrics.rs",
        "report",
        "pred_total",
        AtomicOp::Load,
        RLX,
        "post-run aggregation over quiescent counters",
    ),
    entry(
        "core/metrics.rs",
        "report",
        "pred_remote",
        AtomicOp::Load,
        RLX,
        "post-run aggregation over quiescent counters",
    ),
    // -------------------------------------------------------- core/static_exec.rs
    entry(
        "core/static_exec.rs",
        "execute",
        "executed",
        AtomicOp::Load,
        SC,
        "quiescence debug_assert after the pool job barrier; SeqCst keeps it exact",
    ),
    entry(
        "core/static_exec.rs",
        "process_node",
        "executed",
        AtomicOp::FetchAdd,
        RLX,
        "completion counter read only after the job barrier; atomicity only",
    ),
    pentry(
        "core/static_exec.rs",
        "process_node",
        "join",
        AtomicOp::FetchSub,
        AR,
        &["core/static_exec.rs::process_node::join.fetch_sub"],
        "successor-readiness decrement: Release publishes this node's output writes into \
         the counter's release sequence (its own prior decrements — hence the self pair), \
         and the firing Acquire decrement synchronizes with every predecessor; the same \
         shape run_join_protocol verifies for the dynamic counter",
    ),
    // ------------------------------------------------------------- parfor/team.rs
    entry(
        "parfor/team.rs",
        "parallel_for",
        "counter",
        AtomicOp::Load,
        RLX,
        "guided self-scheduling reads the cursor only to size its next chunk; the \
         fetch_add below is the actual claim, so a stale read can only mis-size",
    ),
    entry(
        "parfor/team.rs",
        "parallel_for",
        "counter",
        AtomicOp::FetchAdd,
        RLX,
        "chunk-claim cursor (two sites: guided + dynamic schedules); the claim needs \
         atomicity only — iteration data is published by the team's mutex/condvar job \
         handoff, not through this counter",
    ),
];

/// One allowlisted file prefix: atomic sites under it are discovered and
/// counted by the workspace scan but exempt from per-site policy
/// matching, and the file is out of scope for the facade pass.
#[derive(Debug, Clone, Copy)]
pub struct AllowlistEntry {
    /// Crate-qualified key prefix (`"check/"` covers the whole crate).
    pub prefix: &'static str,
    /// Why these files are exempt.
    pub why: &'static str,
}

/// Harness code whose atomics are not shipped runtime code. Everything
/// else — every crate under `crates/` — must be covered by [`POLICY`].
pub static SCAN_ALLOWLIST: &[AllowlistEntry] = &[
    AllowlistEntry {
        prefix: "check/",
        why: "model-check harness: loom-instrumented scenario code whose orderings are \
              verified dynamically by exhaustive interleaving, not by this table",
    },
    AllowlistEntry {
        prefix: "bench/",
        why: "bench scaffolding: completion counters in timing harnesses, not shipped \
              runtime code",
    },
];

/// One justified direct `std::sync::atomic` / `parking_lot` reference
/// outside the `nabbitc_runtime::sync` facade.
#[derive(Debug, Clone, Copy)]
pub struct FacadeExemption {
    /// Crate-qualified file key.
    pub file: &'static str,
    /// The token the file may reference (`"parking_lot"`).
    pub token: &'static str,
    /// Why the facade cannot cover this use.
    pub why: &'static str,
}

/// The reviewed exceptions for [`crate::atomics::audit_facade`]. An
/// entry matching no occurrence fails the audit, so this list cannot
/// rot either.
pub static FACADE_EXEMPT: &[FacadeExemption] = &[
    FacadeExemption {
        file: "runtime/sync.rs",
        token: "std::sync::atomic",
        why: "the facade itself: re-exports the std atomics in normal builds",
    },
    FacadeExemption {
        file: "runtime/sync.rs",
        token: "parking_lot",
        why: "the facade itself: re-exports the parking_lot locks in normal builds",
    },
    FacadeExemption {
        file: "runtime/pool.rs",
        token: "parking_lot",
        why: "Condvar has no loom shim; the pool's parking protocol is exercised by the \
              model harness through the deque/injector API instead",
    },
    FacadeExemption {
        file: "parfor/team.rs",
        token: "parking_lot",
        why: "Condvar has no loom shim; the team's park/wake handoff stays on parking_lot",
    },
];
