//! Structural and scheduling lints over a colored [`TaskGraph`].
//!
//! Each detector prices the graph the way the scheduler will see it: a
//! machine of `workers` cores with the caller's [`CostModel`] and
//! [`Topology`]. Findings reference nodes and colors so a report can be
//! traced back to the graph, and every threshold lives in [`LintConfig`]
//! so callers can tighten or relax the gate without forking detectors.
//!
//! The flagship detector is NL003 (serialized wide level): a level wide
//! enough to occupy the whole machine whose weight sits almost entirely
//! on one color executes serially no matter how good the rest of the
//! coloring is. This is exactly the wavefront trap that makes
//! `RecursiveBisection` lose on `sw`, and the same [`GraphShape`]
//! classification drives both this lint and the auto-selection
//! prefilter.

use crate::diag::{Diagnostic, Severity};
use nabbitc_autocolor::{balance_limit, node_weight};
use nabbitc_cost::{CostModel, Topology};
use nabbitc_graph::analysis::{level_profile, GraphShape};
use nabbitc_graph::{GraphError, NodeId, TaskGraph};

/// How many node/color samples a diagnostic carries at most. The message
/// always states the full count; the samples exist to anchor the finding.
const MAX_REFS: usize = 8;

/// Tunable thresholds for the graph lints.
///
/// The defaults are calibrated so the shipped auto-selected colorings of
/// the workload corpus lint clean at `Warn` and above, while known
/// pathologies (the `sw` wavefront under `RecursiveBisection`, stripped
/// colorings, absurd machine/graph mismatches) trip.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// NL003: a level must be at least this wide (relative to `workers`)
    /// before its color concentration matters.
    pub wide_level_factor: f64,
    /// NL003: fraction of a wide level's weight on a single color that
    /// counts as "serialized".
    pub serialized_frac: f64,
    /// NL005: minimum out-degree for a node to count as a hub.
    pub hub_degree: usize,
    /// NL005: a hub warns when its consumers span more than this
    /// fraction of the machine's domains.
    pub hub_domain_frac: f64,
    /// NL006: how many top-traffic edges to examine.
    pub hot_edge_top_k: usize,
    /// NL006: a cross-domain edge warns when its excess cost exceeds
    /// this fraction of the per-worker work share.
    pub hot_edge_frac: f64,
    /// NL008: widths beyond `workers * width_excess_factor` are reported
    /// as (benign) over-decomposition.
    pub width_excess_factor: usize,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            wide_level_factor: 1.0,
            serialized_frac: 0.9,
            hub_degree: 16,
            hub_domain_frac: 0.5,
            hot_edge_top_k: 16,
            hot_edge_frac: 0.25,
            width_excess_factor: 64,
        }
    }
}

/// Runs every graph/schedule detector and returns the findings
/// (unsorted; [`crate::LintReport::new`] orders them).
///
/// `topology` is the NUMA layout the cross-domain lints (NL005, NL006)
/// price against. With `None` those two detectors are skipped: the
/// per-worker fallback would treat every cross-color edge as remote,
/// which drowns real placement problems in noise.
pub fn lint_graph(
    g: &TaskGraph,
    workers: usize,
    cost: &CostModel,
    topology: Option<&Topology>,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let workers = workers.max(1);
    let mut out = Vec::new();
    lint_invalid_colors(g, workers, &mut out);
    lint_dead_nodes(g, &mut out);
    lint_serialized_wide_levels(g, workers, config, &mut out);
    lint_color_imbalance(g, workers, &mut out);
    if let Some(topo) = topology {
        lint_hub_overload(g, workers, topo, config, &mut out);
        lint_cross_domain_hot_edges(g, workers, cost, topo, config, &mut out);
    }
    lint_width_degeneracy(g, workers, config, &mut out);
    lint_absent_colors(g, workers, &mut out);
    out
}

/// Maps [`GraphBuilder::check`](nabbitc_graph::GraphBuilder::check)
/// output to diagnostics (code NL000), so builder problems and schedule
/// problems surface through one report.
pub fn diagnose_build_errors(errors: &[GraphError]) -> Vec<Diagnostic> {
    errors
        .iter()
        .map(|e| {
            let mut d = Diagnostic::new("NL000", Severity::Error, format!("graph build: {e:?}"));
            match *e {
                GraphError::InvalidNode(u) | GraphError::Cycle(u) => d.nodes = vec![u],
                GraphError::DuplicateEdge(u, v) => d.nodes = vec![u, v],
                GraphError::Empty | GraphError::TooManyEdges(_) => {}
            }
            d
        })
        .collect()
}

/// NL001 (Error): a node's color is unset ([`Color::INVALID`]) or maps
/// past the worker count. The runtime folds such nodes onto worker 0, so
/// the schedule silently stops matching the coloring.
fn lint_invalid_colors(g: &TaskGraph, workers: usize, out: &mut Vec<Diagnostic>) {
    let mut bad = Vec::new();
    for u in g.nodes() {
        let c = g.color(u);
        if !c.is_valid() || c.index() >= workers {
            bad.push(u);
        }
    }
    if !bad.is_empty() {
        let sample: Vec<u32> = bad.iter().take(MAX_REFS).copied().collect();
        out.push(
            Diagnostic::new(
                "NL001",
                Severity::Error,
                format!(
                    "{} of {} nodes have an invalid or out-of-range color for P={} \
                     (they all fall back to worker 0)",
                    bad.len(),
                    g.node_count(),
                    workers
                ),
            )
            .with_nodes(sample),
        );
    }
}

/// NL002 (Warn): nodes with no edges and no work contribute nothing but
/// still pass through the scheduler (spawn + deque traffic per node).
fn lint_dead_nodes(g: &TaskGraph, out: &mut Vec<Diagnostic>) {
    let dead: Vec<NodeId> = g
        .nodes()
        .filter(|&u| g.in_degree(u) == 0 && g.out_degree(u) == 0 && g.work(u) == 0)
        .collect();
    if !dead.is_empty() && g.node_count() > dead.len() {
        let sample: Vec<u32> = dead.iter().take(MAX_REFS).copied().collect();
        out.push(
            Diagnostic::new(
                "NL002",
                Severity::Warn,
                format!(
                    "{} isolated zero-work node(s): pure scheduling overhead",
                    dead.len()
                ),
            )
            .with_nodes(sample),
        );
    }
}

/// NL003 (Warn): a machine-wide level whose weight is concentrated on
/// one color. Colored stealing keeps such a level on one worker's deque,
/// so the level runs serially — the `sw` wavefront trap under
/// `RecursiveBisection`.
fn lint_serialized_wide_levels(
    g: &TaskGraph,
    workers: usize,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let profile = level_profile(g);
    let wide_min = ((workers as f64) * config.wide_level_factor).ceil() as usize;
    // Per-level dominant-color weight. Invalid colors share one overflow
    // bucket (index `workers`), matching `level_serialization`.
    let levels = profile.level_count();
    let mut loads = vec![0u64; workers + 1];
    let mut worst: Option<(usize, usize, f64)> = None; // (level, color, frac)
    for level in 0..levels {
        if profile.widths[level] < wide_min {
            continue;
        }
        loads.iter_mut().for_each(|l| *l = 0);
        let mut total = 0u64;
        for u in g.nodes() {
            if profile.level_of[u as usize] as usize != level {
                continue;
            }
            let c = g.color(u);
            let bucket = if c.is_valid() && c.index() < workers {
                c.index()
            } else {
                workers
            };
            let w = g.work(u).max(1);
            loads[bucket] += w;
            total += w;
        }
        let (dom_color, dom_load) = loads
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| l)
            .map(|(c, &l)| (c, l))
            .unwrap_or((0, 0));
        let frac = if total == 0 {
            0.0
        } else {
            dom_load as f64 / total as f64
        };
        if frac >= config.serialized_frac && worst.is_none_or(|(_, _, f)| frac > f) {
            worst = Some((level, dom_color, frac));
        }
    }
    if let Some((level, color, frac)) = worst {
        let width = profile.widths[level];
        let shape = GraphShape::from_profile(&profile, workers);
        let sample: Vec<u32> = g
            .nodes()
            .filter(|&u| profile.level_of[u as usize] as usize == level)
            .take(MAX_REFS)
            .collect();
        let trap = if shape.deep_wavefront() {
            " (deep wavefront: most of the graph's weight sits on such levels)"
        } else {
            ""
        };
        out.push(
            Diagnostic::new(
                "NL003",
                Severity::Warn,
                format!(
                    "level {level} is {width} wide (P={workers}) but {:.0}% of its \
                     weight is on color {color}: the level executes serially{trap}",
                    frac * 100.0
                ),
            )
            .with_nodes(sample)
            .with_colors(vec![color as u16]),
        );
    }
}

/// NL004 (Warn): the heaviest color exceeds the auto-coloring balance
/// contract `2 * max(ceil(W/P), wmax)` — some worker owns more than its
/// share and steals can only partially recover.
fn lint_color_imbalance(g: &TaskGraph, workers: usize, out: &mut Vec<Diagnostic>) {
    if g.node_count() == 0 {
        return;
    }
    let limit = balance_limit(g, workers);
    let mut loads = vec![0u64; workers];
    for u in g.nodes() {
        let c = g.color(u);
        if c.is_valid() && c.index() < workers {
            loads[c.index()] += node_weight(g, u);
        }
    }
    let (max_color, max_load) = loads
        .iter()
        .enumerate()
        .max_by_key(|(_, &l)| l)
        .map(|(c, &l)| (c, l))
        .unwrap_or((0, 0));
    if max_load > limit {
        out.push(
            Diagnostic::new(
                "NL004",
                Severity::Warn,
                format!(
                    "color {max_color} carries weight {max_load}, above the 2x balance \
                     bound {limit} for P={workers}"
                ),
            )
            .with_colors(vec![max_color as u16]),
        );
    }
}

/// NL005 (Warn): a high-degree producer whose consumers are scattered
/// across most of the machine's domains — its output is shipped across
/// the interconnect many times over.
///
/// Needs at least three domains: on a two-domain machine "spanning most
/// domains" degenerates to "has any cross-domain consumer", which every
/// wide hub on a balanced coloring must (a domain holds only
/// `cores_per_domain` workers) — that unavoidable crossing is priced by
/// NL006, while this lint is about *avoidable* scatter.
fn lint_hub_overload(
    g: &TaskGraph,
    workers: usize,
    topo: &Topology,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    if topo.domains() < 3 {
        return;
    }
    let domain_min = ((topo.domains() as f64) * config.hub_domain_frac).floor() as usize + 1;
    let mut hubs: Vec<(NodeId, usize, usize)> = Vec::new(); // (node, degree, domains)
    let mut seen = vec![false; topo.domains()];
    for u in g.nodes() {
        if g.out_degree(u) < config.hub_degree {
            continue;
        }
        seen.iter_mut().for_each(|s| *s = false);
        let home = worker_domain(g, u, workers, topo);
        let mut spread = 0usize;
        for &v in g.successors(u) {
            let d = worker_domain(g, v, workers, topo);
            if d != home && !seen[d] {
                seen[d] = true;
                spread += 1;
            }
        }
        // `spread` counts foreign domains; the hub's own domain makes it
        // a span of `spread + 1`.
        if spread + 1 >= domain_min {
            hubs.push((u, g.out_degree(u), spread + 1));
        }
    }
    if !hubs.is_empty() {
        hubs.sort_by_key(|&(u, deg, _)| (std::cmp::Reverse(deg), u));
        let (u, deg, span) = hubs[0];
        let sample: Vec<u32> = hubs.iter().take(MAX_REFS).map(|&(u, _, _)| u).collect();
        out.push(
            Diagnostic::new(
                "NL005",
                Severity::Warn,
                format!(
                    "{} hub node(s) fan out across domains; worst is node {u} with \
                     {deg} consumers spanning {span} of {} domains",
                    hubs.len(),
                    topo.domains()
                ),
            )
            .with_nodes(sample)
            .with_colors(vec![g.color(u).0]),
        );
    }
}

/// NL006 (Warn): among the top-k heaviest edges by
/// [`TaskGraph::edge_traffic`], one priced remote by
/// [`CostModel::cut_excess`] costs a noticeable fraction of a worker's
/// work share — a single misplaced producer/consumer pair dominating the
/// interconnect bill.
fn lint_cross_domain_hot_edges(
    g: &TaskGraph,
    workers: usize,
    cost: &CostModel,
    topo: &Topology,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    if topo.domains() < 2 || g.node_count() == 0 {
        return;
    }
    let mut edges: Vec<(u64, NodeId, NodeId)> = Vec::new();
    for u in g.nodes() {
        for &v in g.successors(u) {
            let t = g.edge_traffic(u, v);
            if t > 0 {
                edges.push((t, u, v));
            }
        }
    }
    edges.sort_by_key(|&(t, u, v)| (std::cmp::Reverse(t), u, v));
    edges.truncate(config.hot_edge_top_k);
    let total_work: u64 = g.nodes().map(|u| g.work(u)).sum();
    let share = (total_work / workers as u64).max(1);
    let threshold = (share as f64 * config.hot_edge_frac) as u64;
    let mut hot: Vec<(u64, NodeId, NodeId)> = Vec::new();
    for &(t, u, v) in &edges {
        let pu = worker_of(g, u, workers);
        let pv = worker_of(g, v, workers);
        let excess = cost.cut_excess(topo, pu, pv, t);
        if excess > threshold {
            hot.push((excess, u, v));
        }
    }
    if !hot.is_empty() {
        hot.sort_by_key(|&(e, u, v)| (std::cmp::Reverse(e), u, v));
        let (excess, u, v) = hot[0];
        let mut sample = Vec::new();
        for &(_, a, b) in hot.iter().take(MAX_REFS / 2) {
            sample.push(a);
            sample.push(b);
        }
        out.push(
            Diagnostic::new(
                "NL006",
                Severity::Warn,
                format!(
                    "{} cross-domain hot edge(s); worst {u}->{v} adds {excess} remote \
                     ticks, over {:.0}% of a worker's {share}-tick share",
                    hot.len(),
                    config.hot_edge_frac * 100.0
                ),
            )
            .with_nodes(sample)
            .with_colors(vec![g.color(u).0, g.color(v).0]),
        );
    }
}

/// NL007 (Warn) / NL008 (Info): the graph's maximum width against the
/// machine. Width below P starves workers at every level; width wildly
/// above P is harmless for correctness but signals over-decomposition
/// (per-task overhead with no extra parallelism).
fn lint_width_degeneracy(
    g: &TaskGraph,
    workers: usize,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    if g.node_count() == 0 {
        return;
    }
    let shape = GraphShape::of(g, workers);
    if shape.max_width < workers && workers > 1 {
        out.push(Diagnostic::new(
            "NL007",
            Severity::Warn,
            format!(
                "max level width {} < P={}: at least {} worker(s) idle at every level",
                shape.max_width,
                workers,
                workers - shape.max_width
            ),
        ));
    } else if shape.max_width >= workers.saturating_mul(config.width_excess_factor) {
        out.push(Diagnostic::new(
            "NL008",
            Severity::Info,
            format!(
                "max level width {} is {}x P={}: consider coarser tasks to cut \
                 per-node scheduling overhead",
                shape.max_width,
                shape.max_width / workers,
                workers
            ),
        ));
    }
}

/// NL009 (Warn): a worker color with zero nodes while the graph has at
/// least one node per worker — that worker's deque starts empty and it
/// can only ever steal.
fn lint_absent_colors(g: &TaskGraph, workers: usize, out: &mut Vec<Diagnostic>) {
    if g.node_count() < workers {
        return;
    }
    let mut present = vec![false; workers];
    for u in g.nodes() {
        let c = g.color(u);
        if c.is_valid() && c.index() < workers {
            present[c.index()] = true;
        }
    }
    let absent: Vec<u16> = (0..workers)
        .filter(|&c| !present[c])
        .map(|c| c as u16)
        .collect();
    if !absent.is_empty() {
        let n = absent.len();
        let sample: Vec<u16> = absent.into_iter().take(MAX_REFS).collect();
        out.push(
            Diagnostic::new(
                "NL009",
                Severity::Warn,
                format!("{n} of {workers} worker color(s) have no nodes: those workers only steal"),
            )
            .with_colors(sample),
        );
    }
}

/// The worker a node's color maps to (invalid/out-of-range folds to 0,
/// mirroring the runtime's fallback).
fn worker_of(g: &TaskGraph, u: NodeId, workers: usize) -> usize {
    let c = g.color(u);
    if c.is_valid() && c.index() < workers {
        c.index()
    } else {
        0
    }
}

/// The NUMA domain a node executes on under `topo`.
fn worker_domain(g: &TaskGraph, u: NodeId, workers: usize, topo: &Topology) -> usize {
    topo.domain_of(worker_of(g, u, workers).min(topo.cores().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nabbitc_color::Color;
    use nabbitc_graph::GraphBuilder;

    fn find<'a>(diags: &'a [Diagnostic], code: &str) -> Option<&'a Diagnostic> {
        diags.iter().find(|d| d.code == code)
    }

    fn lint(g: &TaskGraph, workers: usize) -> Vec<Diagnostic> {
        lint_graph(
            g,
            workers,
            &CostModel::default(),
            None,
            &LintConfig::default(),
        )
    }

    /// A 2-wide ladder colored round-robin: clean for P=2.
    fn clean_graph() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let mut prev: Vec<nabbitc_graph::NodeId> = Vec::new();
        for level in 0..4 {
            let row: Vec<_> = (0..2)
                .map(|i| b.add_simple_node(10, Color(i as u16), 64))
                .collect();
            if level > 0 {
                for &u in &prev {
                    for &v in &row {
                        b.add_edge(u, v);
                    }
                }
            }
            prev = row;
        }
        b.build().unwrap()
    }

    #[test]
    fn clean_graph_lints_clean() {
        let g = clean_graph();
        let diags = lint(&g, 2);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Warn),
            "{diags:?}"
        );
    }

    #[test]
    fn invalid_and_out_of_range_colors_are_errors() {
        let mut b = GraphBuilder::new();
        let a = b.add_simple_node(1, Color::INVALID, 0);
        let c = b.add_simple_node(1, Color(7), 0);
        b.add_edge(a, c);
        let g = b.build().unwrap();
        let diags = lint(&g, 2);
        let d = find(&diags, "NL001").expect("NL001");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.nodes, vec![a, c]);
    }

    #[test]
    fn isolated_zero_work_nodes_warn() {
        let mut b = GraphBuilder::new();
        let a = b.add_simple_node(5, Color(0), 0);
        let c = b.add_simple_node(5, Color(1), 0);
        b.add_edge(a, c);
        let dead = b.add_simple_node(0, Color(0), 0);
        let g = b.build().unwrap();
        let diags = lint(&g, 2);
        let d = find(&diags, "NL002").expect("NL002");
        assert_eq!(d.nodes, vec![dead]);
    }

    #[test]
    fn monochrome_wide_level_trips_serialization_lint() {
        // One source fanning into a 4-wide level, all on color 0.
        let mut b = GraphBuilder::new();
        let src = b.add_simple_node(1, Color(0), 0);
        for _ in 0..4 {
            let u = b.add_simple_node(100, Color(0), 0);
            b.add_edge(src, u);
        }
        let g = b.build().unwrap();
        let diags = lint(&g, 4);
        let d = find(&diags, "NL003").expect("NL003");
        assert_eq!(d.colors, vec![0]);
        assert!(d.message.contains("level 1"), "{}", d.message);
        // The same level spread over all four colors is fine.
        let mut g2 = g.clone();
        g2.recolor(|u, c| if u == 0 { c } else { Color((u - 1) as u16 % 4) });
        assert!(find(&lint(&g2, 4), "NL003").is_none());
    }

    #[test]
    fn lopsided_coloring_trips_balance_lint() {
        let mut b = GraphBuilder::new();
        let mut prev = b.add_simple_node(100, Color(0), 0);
        for _ in 0..7 {
            let u = b.add_simple_node(100, Color(0), 0);
            b.add_edge(prev, u);
            prev = u;
        }
        // A second color with token work so the imbalance is extreme: on
        // P=4 the chain's 800 ticks on color 0 blow the 2x bound of
        // 2 * ceil(801 / 4) = 402.
        let tail = b.add_simple_node(1, Color(1), 0);
        b.add_edge(prev, tail);
        let g = b.build().unwrap();
        let diags = lint(&g, 4);
        let d = find(&diags, "NL004").expect("NL004");
        assert_eq!(d.colors, vec![0]);
    }

    #[test]
    fn scattered_hub_warns_only_with_domains() {
        let topo = Topology::new(4, 2); // 8 workers, 4 domains
        let mut b = GraphBuilder::new();
        let hub = b.add_simple_node(10, Color(0), 4096);
        for i in 0..16 {
            let u = b.add_simple_node(10, Color(i % 8), 4096);
            b.add_edge(hub, u);
        }
        let g = b.build().unwrap();
        let cfg = LintConfig::default();
        let cost = CostModel::default();
        let diags = lint_graph(&g, 8, &cost, Some(&topo), &cfg);
        let d = find(&diags, "NL005").expect("NL005");
        assert_eq!(d.nodes, vec![hub]);
        // On a UMA machine the same graph is fine.
        let uma = Topology::uma(8);
        assert!(find(&lint_graph(&g, 8, &cost, Some(&uma), &cfg), "NL005").is_none());
    }

    #[test]
    fn heavy_cross_domain_edge_warns() {
        let topo = Topology::new(2, 1); // workers 0 and 1 on different domains
        let mut b = GraphBuilder::new();
        let p = b.add_simple_node(10, Color(0), 1 << 20);
        let c = b.add_simple_node(10, Color(1), 1 << 20);
        b.add_edge(p, c);
        let g = b.build().unwrap();
        let cost = CostModel::default();
        let diags = lint_graph(&g, 2, &cost, Some(&topo), &LintConfig::default());
        let d = find(&diags, "NL006").expect("NL006");
        assert_eq!(d.nodes, vec![p, c]);
        // Same-domain placement silences it.
        let wide = Topology::new(1, 2);
        assert!(find(
            &lint_graph(&g, 2, &cost, Some(&wide), &LintConfig::default()),
            "NL006"
        )
        .is_none());
    }

    #[test]
    fn width_degeneracy_both_directions() {
        // A pure chain on a 4-way machine: width 1 < P.
        let mut b = GraphBuilder::new();
        let mut prev = b.add_simple_node(1, Color(0), 0);
        for _ in 0..3 {
            let u = b.add_simple_node(1, Color(0), 0);
            b.add_edge(prev, u);
            prev = u;
        }
        let g = b.build().unwrap();
        assert!(find(&lint(&g, 4), "NL007").is_some());
        // A 256-wide single level on P=2: over-decomposed (info only).
        let mut b = GraphBuilder::new();
        for i in 0..256 {
            b.add_simple_node(1, Color(i % 2), 0);
        }
        let g = b.build().unwrap();
        let diags = lint(&g, 2);
        let d = find(&diags, "NL008").expect("NL008");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn absent_color_warns() {
        let mut b = GraphBuilder::new();
        for _ in 0..6 {
            b.add_simple_node(5, Color(0), 0);
        }
        let g = b.build().unwrap();
        let diags = lint(&g, 2);
        let d = find(&diags, "NL009").expect("NL009");
        assert_eq!(d.colors, vec![1]);
    }

    #[test]
    fn build_errors_map_to_nl000() {
        let mut b = GraphBuilder::new();
        let a = b.add_simple_node(1, Color(0), 0);
        b.add_edge(a, 7);
        let diags = diagnose_build_errors(&b.check());
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.code == "NL000"));
        assert!(diags.iter().any(|d| d.nodes.contains(&7)));
    }
}
