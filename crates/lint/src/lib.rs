//! Static analysis for NabbitC: a graph/schedule linter and an
//! atomics-ordering audit for the lock-free runtime.
//!
//! # Graph/schedule linter
//!
//! [`lint_graph`] runs structural and scheduling detectors over a colored
//! [`TaskGraph`](nabbitc_graph::TaskGraph), priced against a machine size,
//! a [`CostModel`](nabbitc_cost::CostModel), and an optional NUMA
//! [`Topology`](nabbitc_cost::Topology). Findings carry stable codes:
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | NL000 | Error    | graph construction error ([`GraphBuilder::check`](nabbitc_graph::GraphBuilder::check)) |
//! | NL001 | Error    | invalid / out-of-range node color |
//! | NL002 | Warn     | isolated zero-work node |
//! | NL003 | Warn     | serialized wide level (the wavefront bisection trap) |
//! | NL004 | Warn     | color load above the 2x balance bound |
//! | NL005 | Warn     | hub producer fanning out across NUMA domains |
//! | NL006 | Warn     | cross-domain hot edge (remote traffic vs. work share) |
//! | NL007 | Warn     | max width below the worker count |
//! | NL008 | Info     | max width far above the worker count |
//! | NL009 | Warn     | worker color with no nodes |
//!
//! Reports render human-readable ([`LintReport::render`]) and
//! machine-readable ([`LintReport::to_json`], schema versioned by
//! [`LINT_SCHEMA_VERSION`]). The linter is wired into the execution
//! facade as an opt-in pre-flight gate (see `nabbitc_core`'s
//! `ExecOptions`) and into the `graphlint` CLI in `nabbitc-bench`.
//!
//! # Workspace concurrency audit
//!
//! [`atomics::scan_workspace`] discovers every `.rs` file under
//! `crates/*/src` and extracts every atomic operation site; four passes
//! then run over the result:
//!
//! | pass | check |
//! |------|-------|
//! | [`atomics::audit`] | every site matches a [`policy::POLICY`] entry and uses an allowed `Ordering` sequence (harness files: [`policy::SCAN_ALLOWLIST`]) |
//! | [`atomics::audit_pairs`] | every Acquire entry names its release-capable partner(s); every Release entry is named by someone |
//! | [`atomics::audit_facade`] | no direct `std::sync::atomic` / `parking_lot` outside the `nabbitc_runtime::sync` facade ([`policy::FACADE_EXEMPT`]) |
//! | [`atomics::audit_safety`] | every `unsafe` in non-test code carries a `SAFETY` / `# Safety` justification |
//!
//! Unknown sites, ordering downgrades, stale policy entries, orphaned
//! Release stores, facade escapes, and undocumented `unsafe` all fail —
//! including the seeded `nabbitc_weak_pop` fence weakening and the
//! seeded `nabbitc_weak_join` counter relaxation, which the audit
//! catches without ever building the weakened binaries.

pub mod atomics;
pub mod diag;
pub mod graph;
pub mod policy;

pub use atomics::{
    audit, audit_facade, audit_pairs, audit_safety, scan_workspace, AtomicOp, AtomicOrdering,
    AtomicSite, SourceFile, WorkspaceScan,
};
pub use diag::{Diagnostic, LintReport, Severity, LINT_SCHEMA_VERSION};
pub use graph::{diagnose_build_errors, lint_graph, LintConfig};
pub use policy::{
    AllowlistEntry, FacadeExemption, PolicyEntry, FACADE_EXEMPT, POLICY, SCAN_ALLOWLIST,
};
