//! Static analysis for NabbitC: a graph/schedule linter and an
//! atomics-ordering audit for the lock-free runtime.
//!
//! # Graph/schedule linter
//!
//! [`lint_graph`] runs structural and scheduling detectors over a colored
//! [`TaskGraph`](nabbitc_graph::TaskGraph), priced against a machine size,
//! a [`CostModel`](nabbitc_cost::CostModel), and an optional NUMA
//! [`Topology`](nabbitc_cost::Topology). Findings carry stable codes:
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | NL000 | Error    | graph construction error ([`GraphBuilder::check`](nabbitc_graph::GraphBuilder::check)) |
//! | NL001 | Error    | invalid / out-of-range node color |
//! | NL002 | Warn     | isolated zero-work node |
//! | NL003 | Warn     | serialized wide level (the wavefront bisection trap) |
//! | NL004 | Warn     | color load above the 2x balance bound |
//! | NL005 | Warn     | hub producer fanning out across NUMA domains |
//! | NL006 | Warn     | cross-domain hot edge (remote traffic vs. work share) |
//! | NL007 | Warn     | max width below the worker count |
//! | NL008 | Info     | max width far above the worker count |
//! | NL009 | Warn     | worker color with no nodes |
//!
//! Reports render human-readable ([`LintReport::render`]) and
//! machine-readable ([`LintReport::to_json`], schema versioned by
//! [`LINT_SCHEMA_VERSION`]). The linter is wired into the execution
//! facade as an opt-in pre-flight gate (see `nabbitc_core`'s
//! `ExecOptions`) and into the `graphlint` CLI in `nabbitc-bench`.
//!
//! # Atomics-ordering audit
//!
//! [`atomics::scan_runtime`] extracts every atomic operation in the
//! runtime's lock-free core and [`atomics::audit`] checks the sites
//! against the committed [`policy::POLICY`] table, where each entry
//! records the allowed `Ordering` sequences and a one-line justification.
//! Unknown sites, ordering downgrades, and stale policy entries all fail
//! — including the seeded `nabbitc_weak_pop` fence weakening, which the
//! audit catches without ever building the weakened binary.

pub mod atomics;
pub mod diag;
pub mod graph;
pub mod policy;

pub use atomics::{audit, scan_runtime, AtomicOp, AtomicOrdering, AtomicSite};
pub use diag::{Diagnostic, LintReport, Severity, LINT_SCHEMA_VERSION};
pub use graph::{diagnose_build_errors, lint_graph, LintConfig};
pub use policy::{PolicyEntry, POLICY};
