//! The diagnostics layer: severities, stable lint codes, and the
//! [`LintReport`] container with human-readable and machine-readable
//! (JSON) rendering.
//!
//! Codes are stable identifiers of the form `NL0xx`; once assigned they
//! are never reused for a different meaning, so downstream tooling can
//! match on them across versions. The JSON layout is versioned by
//! [`LINT_SCHEMA_VERSION`] and validated round-trip by the bench crate's
//! schema validator.

use std::fmt::Write as _;

/// Version of the machine-readable report layout. Bumped whenever the
/// JSON keys or the meaning of an existing field change.
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// How bad a finding is.
///
/// The ordering is meaningful: `Info < Warn < Error`, so gates can
/// compare against a threshold (`--deny-warnings` rejects `>= Warn`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Worth knowing; never fails a gate.
    Info,
    /// A scheduling pathology that will likely cost performance.
    Warn,
    /// The schedule is broken (e.g. unstealable colors); executing it
    /// will not do what the coloring promises.
    Error,
}

impl Severity {
    /// Lower-case display name (also the JSON encoding).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One finding: a stable code, a severity, a message, and the node/color
/// references that anchor it in the graph (capped samples, not exhaustive
/// lists — the message carries the totals).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (`"NL003"`); see the crate docs for the table.
    pub code: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Human-readable description, self-contained (totals included).
    pub message: String,
    /// Sample node ids the finding anchors to (possibly empty).
    pub nodes: Vec<u32>,
    /// Sample colors involved (possibly empty).
    pub colors: Vec<u16>,
}

impl Diagnostic {
    /// Creates a diagnostic with no node/color references.
    pub fn new(code: &'static str, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message,
            nodes: Vec::new(),
            colors: Vec::new(),
        }
    }

    /// Attaches sample node references (builder style).
    pub fn with_nodes(mut self, nodes: Vec<u32>) -> Diagnostic {
        self.nodes = nodes;
        self
    }

    /// Attaches sample color references (builder style).
    pub fn with_colors(mut self, colors: Vec<u16>) -> Diagnostic {
        self.colors = colors;
        self
    }
}

/// A full lint run over one target: what was linted, for which machine
/// size, and everything found.
#[derive(Debug, Clone, PartialEq)]
pub struct LintReport {
    /// [`LINT_SCHEMA_VERSION`] at render time.
    pub schema_version: u32,
    /// What was linted (a workload name, `"execute_auto"`, ...).
    pub target: String,
    /// Which coloring the graph carried (`"auto"`, an assigner name,
    /// `"hand"`, ...).
    pub coloring: String,
    /// Machine size the lints priced against.
    pub workers: usize,
    /// Findings, ordered by code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Assembles a report (findings are sorted by code, then message, so
    /// reports are deterministic regardless of detector order).
    pub fn new(
        target: impl Into<String>,
        coloring: impl Into<String>,
        workers: usize,
        mut diagnostics: Vec<Diagnostic>,
    ) -> LintReport {
        diagnostics.sort_by(|a, b| a.code.cmp(b.code).then_with(|| a.message.cmp(&b.message)));
        LintReport {
            schema_version: LINT_SCHEMA_VERSION,
            target: target.into(),
            coloring: coloring.into(),
            workers,
            diagnostics,
        }
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The worst severity present, or `None` for a clean report.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.worst() == Some(Severity::Error)
    }

    /// Whether any finding is [`Severity::Warn`] or worse.
    pub fn has_warnings(&self) -> bool {
        self.worst() >= Some(Severity::Warn)
    }

    /// Human-readable rendering, one line per finding plus a summary
    /// line. Example:
    ///
    /// ```text
    /// sw/recursive-bisection (P=8): 1 warning
    ///   NL003 warn: wide level 12 (width 20) has 100% of its weight on color 3
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{}/{} (P={}): ",
            self.target, self.coloring, self.workers
        );
        if self.diagnostics.is_empty() {
            out.push_str("clean\n");
            return out;
        }
        let counts = [
            (self.count(Severity::Error), "error"),
            (self.count(Severity::Warn), "warning"),
            (self.count(Severity::Info), "info"),
        ];
        let summary: Vec<String> = counts
            .iter()
            .filter(|(n, _)| *n > 0)
            .map(|(n, label)| {
                let plural = if *n == 1 || *label == "info" { "" } else { "s" };
                format!("{n} {label}{plural}")
            })
            .collect();
        out.push_str(&summary.join(", "));
        out.push('\n');
        for d in &self.diagnostics {
            let _ = write!(out, "  {} {}: {}", d.code, d.severity.name(), d.message);
            if !d.nodes.is_empty() {
                let refs: Vec<String> = d.nodes.iter().map(|n| n.to_string()).collect();
                let _ = write!(out, " [nodes {}]", refs.join(","));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable rendering: a versioned JSON document. The schema
    /// is validated by `nabbitc-bench`'s `validate_lint_json`, and the
    /// exact layout is:
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "target": "sw", "coloring": "recursive-bisection", "workers": 8,
    ///   "counts": {"error": 0, "warn": 1, "info": 0},
    ///   "diagnostics": [
    ///     {"code": "NL003", "severity": "warn", "message": "...",
    ///      "nodes": [17, 18], "colors": [3]}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"target\": \"{}\",", escape_json(&self.target));
        let _ = writeln!(out, "  \"coloring\": \"{}\",", escape_json(&self.coloring));
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(
            out,
            "  \"counts\": {{\"error\": {}, \"warn\": {}, \"info\": {}}},",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        );
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", ",
                d.code,
                d.severity.name(),
                escape_json(&d.message)
            );
            let nodes: Vec<String> = d.nodes.iter().map(|n| n.to_string()).collect();
            let colors: Vec<String> = d.colors.iter().map(|c| c.to_string()).collect();
            let _ = write!(
                out,
                "\"nodes\": [{}], \"colors\": [{}]}}",
                nodes.join(", "),
                colors.join(", ")
            );
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal. The messages
/// this crate produces are plain ASCII, but escaping is cheap insurance
/// against a workload name with a quote in it.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        LintReport::new(
            "sw",
            "recursive-bisection",
            8,
            vec![
                Diagnostic::new("NL004", Severity::Warn, "imbalance".into()).with_colors(vec![3]),
                Diagnostic::new("NL001", Severity::Error, "invalid color".into())
                    .with_nodes(vec![5, 6]),
                Diagnostic::new("NL008", Severity::Info, "very wide".into()),
            ],
        )
    }

    #[test]
    fn severity_orders_and_names() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.name(), "warn");
    }

    #[test]
    fn report_sorts_counts_and_grades() {
        let r = sample();
        let codes: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["NL001", "NL004", "NL008"]);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert_eq!(r.worst(), Some(Severity::Error));
        assert!(r.has_errors());
        assert!(r.has_warnings());
        let clean = LintReport::new("heat", "auto", 8, vec![]);
        assert_eq!(clean.worst(), None);
        assert!(!clean.has_warnings());
        assert!(clean.render().contains("clean"));
    }

    #[test]
    fn render_mentions_every_code() {
        let text = sample().render();
        for code in ["NL001", "NL004", "NL008"] {
            assert!(text.contains(code), "missing {code} in:\n{text}");
        }
        assert!(text.contains("1 error, 1 warning, 1 info"), "{text}");
    }

    #[test]
    fn json_has_versioned_layout() {
        let json = sample().to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"counts\": {\"error\": 1, \"warn\": 1, \"info\": 1}"));
        assert!(json.contains("\"code\": \"NL001\""));
        assert!(json.contains("\"nodes\": [5, 6]"));
        // Balanced structure (the bench crate's parser does the real
        // grammar check in its round-trip test).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_strings() {
        let r = LintReport::new("a\"b", "c\\d", 1, vec![]);
        let json = r.to_json();
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("c\\\\d"));
    }
}
