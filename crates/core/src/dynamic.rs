//! On-demand dynamic task-graph execution — the full Nabbit protocol.
//!
//! The computation is *specified*, not materialized: the user supplies a
//! [`TaskSpec`] (key type, predecessor function, color function, compute
//! function) and a sink key. The executor discovers nodes lazily:
//!
//! * To process a node, a worker initializes it and recursively processes
//!   its not-yet-created predecessors (paper §II, scheduler action 1).
//! * If a predecessor was already created by another worker but has not
//!   finished, the worker enqueues the current node on the predecessor's
//!   successor list and moves on (action 2, the `try_init_compute` race of
//!   Fig. 4 — exactly one creator wins per key).
//! * After computing a node, the worker drains its successor list and
//!   spawns the successors that became ready (action 3,
//!   `compute_and_notify`).
//!
//! Readiness uses a join counter with a +1 *initialization bias*: the bias
//! is held while the node's predecessor list is being scanned so the node
//! cannot fire before the scan finishes, and is released at the end of
//! `init`. The worker whose decrement brings the counter to zero computes
//! the node — in Nabbit terms, the thread that satisfies the last
//! dependence runs `compute_and_notify`, which is what preserves the
//! critical path.
//!
//! All predecessor and successor batches flow through
//! [`crate::spawn::spawn_colors`], making this NabbitC when
//! the pool steals by color.

use crate::join::JoinCounter;
use crate::metrics::{RemoteAccessReport, RemoteCounters};
use crate::spawn::{spawn_colors, ColoredItem};
use nabbitc_color::{Color, ColorSet};
use nabbitc_runtime::sync::{AtomicU64, Mutex, Ordering, RwLock};
use nabbitc_runtime::{Pool, PoolStats, WorkerContext};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// A dynamic task-graph computation, the Rust analogue of the paper's
/// `DynamicNabbitNode` abstract class (Fig. 2): keys identify tasks,
/// `predecessors` declares dependences, `color` carries the locality hint,
/// and `compute` does the work.
pub trait TaskSpec: Send + Sync + 'static {
    /// Task key ("each task is associated with a unique key").
    type Key: Clone + Eq + Hash + Send + Sync + std::fmt::Debug + 'static;

    /// Keys of the tasks this key depends on.
    fn predecessors(&self, key: &Self::Key) -> Vec<Self::Key>;

    /// The task's locality color (the paper's user-defined `color()`).
    fn color(&self, key: &Self::Key) -> Color;

    /// Performs the task. `worker` is the executing worker id.
    fn compute(&self, key: &Self::Key, worker: usize);
}

const CREATED: u8 = 0;
const COMPUTED: u8 = 1;

struct NodeState<K> {
    key: K,
    color: Color,
    /// Join counter with +1 init bias; the decrement that reaches zero owns
    /// the compute.
    join: JoinCounter,
    /// Status + successor list, guarded together so that registration can
    /// atomically decide "enqueue" vs "already computed" (the paper's
    /// atomicity choice that makes enqueueing race-free).
    succ: Mutex<SuccList<K>>,
}

struct SuccList<K> {
    status: u8,
    waiting: Vec<Arc<NodeState<K>>>,
}

/// Sharded concurrent node table (key → node). The paper's "atomically
/// attempt to create a predecessor with key pkey".
struct NodeTable<K> {
    shards: Vec<RwLock<HashMap<K, Arc<NodeState<K>>>>>,
}

impl<K: Eq + Hash + Clone> NodeTable<K> {
    fn new() -> Self {
        NodeTable {
            shards: (0..64).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Arc<NodeState<K>>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Returns `(node, created_by_us)`.
    fn get_or_create(&self, key: &K, color: Color) -> (Arc<NodeState<K>>, bool) {
        let shard = self.shard(key);
        if let Some(n) = shard.read().get(key) {
            return (n.clone(), false);
        }
        let mut w = shard.write();
        if let Some(n) = w.get(key) {
            return (n.clone(), false);
        }
        let node = Arc::new(NodeState {
            key: key.clone(),
            color,
            join: JoinCounter::new(),
            succ: Mutex::new(SuccList {
                status: CREATED,
                waiting: Vec::new(),
            }),
        });
        w.insert(key.clone(), node.clone());
        (node, true)
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

/// Result of a dynamic execution.
#[derive(Debug)]
pub struct DynamicReport {
    /// Wall-clock time.
    pub elapsed: std::time::Duration,
    /// Nodes discovered and executed.
    pub nodes_executed: u64,
    /// Remote-access accounting (§V-B).
    pub remote: RemoteAccessReport,
    /// Scheduler statistics.
    pub stats: PoolStats,
}

struct DynState<S: TaskSpec> {
    spec: Arc<S>,
    table: NodeTable<S::Key>,
    remote: Option<RemoteCounters>,
    executed: AtomicU64,
}

enum Work<S: TaskSpec> {
    /// A node we created and must initialize (paper: `init_node_and_compute`).
    Init(Arc<NodeState<S::Key>>),
    /// A node whose dependences were satisfied; compute it.
    Compute(Arc<NodeState<S::Key>>),
}

impl<S: TaskSpec> ColoredItem for Work<S> {
    fn color(&self) -> Color {
        match self {
            Work::Init(n) | Work::Compute(n) => n.color,
        }
    }
}

/// Executes [`TaskSpec`] computations on a [`Pool`].
pub struct DynamicExecutor<S: TaskSpec> {
    pool: Arc<Pool>,
    spec: Arc<S>,
    count_remote: bool,
}

impl<S: TaskSpec> DynamicExecutor<S> {
    /// Creates an executor for `spec` on `pool`.
    pub fn new(pool: Arc<Pool>, spec: Arc<S>) -> Self {
        DynamicExecutor {
            pool,
            spec,
            count_remote: true,
        }
    }

    /// Enables/disables remote-access accounting.
    pub fn with_remote_counting(mut self, on: bool) -> Self {
        self.count_remote = on;
        self
    }

    /// Executes the computation rooted at `sink`: everything the sink
    /// transitively depends on runs exactly once, in dependence order.
    pub fn execute(&self, sink: S::Key) -> DynamicReport {
        let workers = self.pool.workers();
        let state: Arc<DynState<S>> = Arc::new(DynState {
            spec: self.spec.clone(),
            table: NodeTable::new(),
            remote: self
                .count_remote
                .then(|| RemoteCounters::new(self.pool.topology().clone(), workers)),
            executed: AtomicU64::new(0),
        });

        self.pool.reset_stats();
        let started = Instant::now();
        {
            let st = state.clone();
            let sink_color = self.spec.color(&sink);
            let sink_key = sink.clone();
            self.pool.run(ColorSet::singleton(sink_color), move |ctx| {
                let (node, created) = st.table.get_or_create(&sink_key, sink_color);
                debug_assert!(created, "sink must be fresh");
                init_node(&st, ctx, node);
            });
        }
        let elapsed = started.elapsed();
        // The job only terminates when every spawned task finished; verify
        // the sink actually computed (the paper's completion criterion).
        let (sink_node, created) = state.table.get_or_create(&sink, self.spec.color(&sink));
        assert!(!created, "sink vanished from the node table");
        assert_eq!(
            sink_node.succ.lock().status,
            COMPUTED,
            "sink did not complete"
        );
        let nodes_executed = state.executed.load(Ordering::SeqCst);
        debug_assert_eq!(nodes_executed as usize, state.table.len());

        DynamicReport {
            elapsed,
            nodes_executed,
            remote: state
                .remote
                .as_ref()
                .map(|r| r.report())
                .unwrap_or_default(),
            stats: self.pool.stats(),
        }
    }
}

/// Dispatches a work item (used by the color-aware spawner).
fn dispatch<S: TaskSpec>(state: &Arc<DynState<S>>, ctx: &mut WorkerContext<'_>, work: Work<S>) {
    match work {
        Work::Init(node) => init_node(state, ctx, node),
        Work::Compute(node) => compute_and_notify(state, ctx, node),
    }
}

/// The paper's `init_node_and_compute` (Fig. 4): discover predecessors,
/// create or register with each, then release the init bias.
fn init_node<S: TaskSpec>(
    state: &Arc<DynState<S>>,
    ctx: &mut WorkerContext<'_>,
    node: Arc<NodeState<S::Key>>,
) {
    // Chain-shaped graphs discover one new predecessor per node; iterate
    // on that case instead of recursing so discovery depth is unbounded.
    let mut node = node;
    loop {
        let preds = state.spec.predecessors(&node.key);

        // Bias +1 while scanning so the node cannot fire mid-scan; start
        // from the full predecessor count and decrement for each
        // already-computed one.
        node.join.begin_scan(preds.len());

        let mut to_init: Vec<Work<S>> = Vec::new();
        let mut satisfied: i64 = 0;

        for pk in preds {
            let pcolor = state.spec.color(&pk);
            let (pred, created) = state.table.get_or_create(&pk, pcolor);
            // Register interest (try_init_compute): under the successor
            // lock, either the predecessor is already computed (dependence
            // satisfied) or we enqueue ourselves.
            let registered = {
                let mut s = pred.succ.lock();
                if s.status == COMPUTED {
                    false
                } else {
                    s.waiting.push(node.clone());
                    true
                }
            };
            if !registered {
                satisfied += 1;
            }
            if created {
                to_init.push(Work::Init(pred));
            }
        }

        // Release satisfied dependences and the init bias; whoever reaches
        // zero computes the node.
        let self_ready = node.join.end_scan(satisfied);

        // Spawn the predecessors we created, color-guided. If this node
        // became ready, append it to the same batch so its compute also
        // routes by color (with a single item spawn_colors degenerates to
        // a direct call).
        if self_ready {
            to_init.push(Work::Compute(node.clone()));
        }
        match to_init.len() {
            0 => return,
            1 => match to_init.pop().expect("len checked") {
                Work::Init(n) => {
                    node = n;
                }
                Work::Compute(n) => {
                    compute_and_notify(state, ctx, n);
                    return;
                }
            },
            _ => {
                let st = state.clone();
                spawn_colors(
                    ctx,
                    to_init,
                    Arc::new(move |ctx: &mut WorkerContext<'_>, w: Work<S>| {
                        dispatch(&st, ctx, w);
                    }),
                );
                return;
            }
        }
    }
}

/// The paper's `compute_and_notify` (Fig. 4): run the task, mark computed,
/// drain waiters, spawn the ones that became ready.
fn compute_and_notify<S: TaskSpec>(
    state: &Arc<DynState<S>>,
    ctx: &mut WorkerContext<'_>,
    start: Arc<NodeState<S::Key>>,
) {
    // Iterate instead of recursing for the single-ready-successor case so
    // chain-shaped graphs cannot overflow the stack.
    let mut node = start;
    loop {
        debug_assert_eq!(node.join.pending(), 0);
        let me = ctx.worker_id();

        if let Some(rc) = &state.remote {
            let pred_colors: Vec<Color> = state
                .spec
                .predecessors(&node.key)
                .iter()
                .map(|k| state.spec.color(k))
                .collect();
            rc.record_node(me, node.color, pred_colors);
        }

        state.spec.compute(&node.key, me);
        state.executed.fetch_add(1, Ordering::Relaxed);

        // Publish COMPUTED and take the waiters atomically.
        let waiting = {
            let mut s = node.succ.lock();
            s.status = COMPUTED;
            std::mem::take(&mut s.waiting)
        };

        let mut ready: Vec<Work<S>> = Vec::new();
        for w in waiting {
            if w.join.notify() {
                ready.push(Work::Compute(w));
            }
        }

        if ready.is_empty() {
            return;
        }
        if ready.len() == 1 {
            match ready.pop().expect("len checked") {
                Work::Compute(n) => {
                    node = n;
                    continue;
                }
                Work::Init(n) => {
                    init_node(state, ctx, n);
                    return;
                }
            }
        }
        let st = state.clone();
        spawn_colors(
            ctx,
            ready,
            Arc::new(move |ctx: &mut WorkerContext<'_>, w: Work<S>| {
                dispatch(&st, ctx, w);
            }),
        );
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nabbitc_runtime::PoolConfig;
    use parking_lot::Mutex as PlMutex;

    /// Pascal-triangle style DAG: key (i, j) depends on (i-1, j-1) and
    /// (i-1, j) when in range. Sink (n, k) pulls in a triangle of nodes.
    struct Pascal {
        n: usize,
        computed: PlMutex<Vec<(usize, usize)>>,
        colors: usize,
    }

    impl TaskSpec for Pascal {
        type Key = (usize, usize);

        fn predecessors(&self, &(i, j): &Self::Key) -> Vec<Self::Key> {
            let mut p = Vec::new();
            if i > 0 {
                if j > 0 {
                    p.push((i - 1, j - 1));
                }
                if j < i {
                    p.push((i - 1, j));
                }
            }
            p
        }

        fn color(&self, &(_, j): &Self::Key) -> Color {
            Color::from(j % self.colors.max(1))
        }

        fn compute(&self, key: &Self::Key, _worker: usize) {
            self.computed.lock().push(*key);
        }
    }

    fn run_pascal(workers: usize, n: usize) -> Vec<(usize, usize)> {
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
        let spec = Arc::new(Pascal {
            n,
            computed: PlMutex::new(Vec::new()),
            colors: workers,
        });
        let exec = DynamicExecutor::new(pool, spec.clone());
        let report = exec.execute((spec.n, n / 2));
        let order = spec.computed.lock().clone();
        assert_eq!(order.len() as u64, report.nodes_executed);
        order
    }

    fn check_order(order: &[(usize, usize)]) {
        // Every node's predecessors appear earlier.
        let pos: HashMap<(usize, usize), usize> =
            order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        for (&(i, j), &p) in &pos {
            if i > 0 {
                if j > 0 {
                    assert!(pos[&(i - 1, j - 1)] < p, "({i},{j}) before its pred");
                }
                if j < i {
                    assert!(pos[&(i - 1, j)] < p, "({i},{j}) before its pred");
                }
            }
        }
        // No duplicates.
        assert_eq!(pos.len(), order.len());
    }

    #[test]
    fn pascal_single_worker() {
        let order = run_pascal(1, 10);
        check_order(&order);
        // Triangle above (10,5): exactly the ancestors.
        assert!(order.contains(&(10, 5)));
        assert!(order.contains(&(0, 0)));
    }

    #[test]
    fn pascal_many_workers() {
        for seed_run in 0..3 {
            let _ = seed_run;
            let order = run_pascal(8, 40);
            check_order(&order);
        }
    }

    #[test]
    fn only_demanded_nodes_execute() {
        // Sink (5, 0) depends only on the left edge (i, 0): 6 nodes.
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let spec = Arc::new(Pascal {
            n: 5,
            computed: PlMutex::new(Vec::new()),
            colors: 4,
        });
        let exec = DynamicExecutor::new(pool, spec.clone());
        let report = exec.execute((5, 0));
        assert_eq!(report.nodes_executed, 6);
        let order = spec.computed.lock().clone();
        assert!(order.iter().all(|&(_, j)| j == 0));
    }

    #[test]
    fn nabbit_policy_dynamic() {
        let pool = Arc::new(Pool::new(PoolConfig::nabbit(6)));
        let spec = Arc::new(Pascal {
            n: 30,
            computed: PlMutex::new(Vec::new()),
            colors: 6,
        });
        let exec = DynamicExecutor::new(pool, spec.clone());
        exec.execute((30, 15));
        check_order(&spec.computed.lock());
    }

    #[test]
    fn deep_chain_spec_no_overflow() {
        struct Chain;
        impl TaskSpec for Chain {
            type Key = u32;
            fn predecessors(&self, &k: &u32) -> Vec<u32> {
                if k == 0 {
                    vec![]
                } else {
                    vec![k - 1]
                }
            }
            fn color(&self, &k: &u32) -> Color {
                Color::from((k % 4) as usize)
            }
            fn compute(&self, _: &u32, _: usize) {}
        }
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let exec = DynamicExecutor::new(pool, Arc::new(Chain));
        let report = exec.execute(100_000);
        assert_eq!(report.nodes_executed, 100_001);
    }

    #[test]
    fn shared_predecessor_created_once() {
        // Diamond: sink has two preds sharing one grand-pred; the
        // grand-pred must execute exactly once even under racing.
        struct Diamond {
            count: AtomicU64,
        }
        impl TaskSpec for Diamond {
            type Key = u8;
            fn predecessors(&self, &k: &u8) -> Vec<u8> {
                match k {
                    3 => vec![1, 2],
                    1 | 2 => vec![0],
                    _ => vec![],
                }
            }
            fn color(&self, &k: &u8) -> Color {
                Color::from((k % 2) as usize)
            }
            fn compute(&self, &k: &u8, _: usize) {
                if k == 0 {
                    self.count.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        for _ in 0..50 {
            let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
            let spec = Arc::new(Diamond {
                count: AtomicU64::new(0),
            });
            let exec = DynamicExecutor::new(pool, spec.clone());
            let report = exec.execute(3);
            assert_eq!(report.nodes_executed, 4);
            assert_eq!(spec.count.load(Ordering::SeqCst), 1);
        }
    }
}
