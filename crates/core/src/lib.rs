//! Nabbit and NabbitC task-graph executors — the paper's primary
//! contribution.
//!
//! [`static_exec::StaticExecutor`] executes a pre-built
//! [`TaskGraph`](nabbitc_graph::TaskGraph): every node known up front,
//! readiness tracked with atomic join counters. This is the path the
//! paper's benchmarks exercise (their task graphs are fully determined by
//! the problem configuration).
//!
//! [`dynamic`] provides the full on-demand Nabbit protocol from Agrawal,
//! Leiserson & Sukha (IPDPS'10): the computation is *specified* by a sink
//! key plus a predecessor function; nodes are created lazily as they are
//! discovered, racing threads arbitrate creation through a concurrent node
//! table, and late arrivals enqueue themselves on a predecessor's successor
//! list (the `try_init_compute` path of the paper's Figure 4).
//!
//! Both executors route every batch spawn through [`spawn`] —
//! `gather_colors` + `spawn_colors`, the *morphing continuation* mechanism
//! of §III: batches are recursively split by color so the spawning worker
//! dives into its own color's sub-batch while the other colors sit in
//! stealable tasks tagged with exactly their color sets.
//!
//! [`metrics`] implements the paper's §V-B node-granularity remote-access
//! accounting; [`coloring`] the Correct / Bad (Table II) / Invalid
//! (Table III) coloring strategies; [`auto`] hooks the
//! `nabbitc-autocolor` subsystem into both executors so graphs and specs
//! without hand-written colors still schedule locality-aware.
//!
//! # Pre-flight schedule linting
//!
//! [`ExecOptions::lint`] turns `execute_auto` into a gated pipeline: with
//! [`LintGate::Report`] the inferred coloring is run through the
//! `nabbitc-lint` graph/schedule detectors before any task executes and
//! the findings ride along on [`RunReport::lint`]; the
//! [`LintGate::DenyErrors`] / [`LintGate::DenyWarnings`] gates make a
//! degenerate schedule (serialized wide levels, out-of-range colors,
//! starved workers, ...) a hard stop instead of a slow run. Linting is
//! opt-in and priced with the same [`ExecOptions::cost`] /
//! [`ExecOptions::topology`] the selection scored with, so the gate sees
//! the machine the scheduler sees.

pub mod auto;
pub mod coloring;
pub mod dynamic;
pub mod join;
pub mod metrics;
pub mod report;
pub mod spawn;
pub mod static_exec;

pub use auto::AutoColoredSpec;
pub use coloring::ColoringMode;
pub use dynamic::{DynamicExecutor, DynamicReport, TaskSpec};
pub use join::JoinCounter;
pub use metrics::{RemoteAccessReport, RemoteCounters};
pub use report::RunReport;
pub use static_exec::{ExecOptions, LintGate, StaticExecutor};
