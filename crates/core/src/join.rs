//! The dynamic protocol's join counter — the paper's readiness arbiter.
//!
//! A node's counter is initialized with a +1 *initialization bias* while
//! its predecessor list is being scanned (`begin_scan`), so the node
//! cannot fire mid-scan no matter how fast predecessors complete. Each
//! completing predecessor decrements once (`notify`); the scanning
//! worker releases the bias together with the already-satisfied
//! dependences in one RMW (`end_scan`). Whichever decrement reaches zero
//! owns the compute — exactly one of them can, which is the exactly-once
//! enqueue guarantee the `nabbitc-check` join scenario verifies over all
//! bounded interleavings.
//!
//! Orderings: the init store is `SeqCst` (it races nothing — the node is
//! not yet published to any predecessor's successor list — but it seeds
//! the decrement chain every later `AcqRel` RMW extends). The decrements
//! are `AcqRel`: each `Release` publishes the predecessor's computed
//! effects into the RMW release sequence, and the final `Acquire`
//! decrement (the one that fires) synchronizes with all of them, so the
//! compute observes every predecessor's writes.
//!
//! Under `--cfg nabbitc_weak_join` (a seeded-bug canary, set via
//! `RUSTFLAGS` like the runtime's `nabbitc_weak_pop`) the bias is
//! dropped and the scan-side operations are downgraded to `Relaxed`:
//! a predecessor finishing mid-scan can then bring the counter to zero
//! *and* the scanner's `end_scan` still observes zero — both enqueue,
//! the W2 double-compute the checker must catch. The same downgrade is
//! rejected statically by the `nabbitc-lint` atomics audit, which checks
//! this file's sites cfg-aware against the policy table.

use nabbitc_runtime::sync::{AtomicI64, Ordering};

/// Join counter with +1 initialization bias (see module docs).
#[derive(Debug)]
pub struct JoinCounter {
    count: AtomicI64,
}

impl Default for JoinCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl JoinCounter {
    /// A counter for a freshly created, not-yet-scanned node.
    pub fn new() -> Self {
        JoinCounter {
            count: AtomicI64::new(0),
        }
    }

    /// Arms the counter for a predecessor scan over `preds` dependences:
    /// full count plus the init bias that keeps the node from firing
    /// before [`end_scan`](Self::end_scan).
    pub fn begin_scan(&self, preds: usize) {
        #[cfg(not(nabbitc_weak_join))]
        self.count.store(preds as i64 + 1, Ordering::SeqCst);
        #[cfg(nabbitc_weak_join)]
        self.count.store(preds as i64, Ordering::Relaxed);
    }

    /// Releases `satisfied` already-computed dependences plus the init
    /// bias in one decrement. Returns `true` iff this decrement brought
    /// the counter to zero — the caller owns the compute.
    pub fn end_scan(&self, satisfied: i64) -> bool {
        #[cfg(not(nabbitc_weak_join))]
        let ready = self.count.fetch_sub(satisfied + 1, Ordering::AcqRel) == satisfied + 1;
        #[cfg(nabbitc_weak_join)]
        let ready = self.count.fetch_sub(satisfied, Ordering::Relaxed) == satisfied;
        ready
    }

    /// One dependence satisfied by a completing predecessor. Returns
    /// `true` iff this was the last one — the caller owns the compute.
    pub fn notify(&self) -> bool {
        self.count.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Current count (diagnostics; a computed node must read zero).
    pub fn pending(&self) -> i64 {
        self.count.load(Ordering::SeqCst)
    }
}

#[cfg(all(test, not(nabbitc_check)))]
mod tests {
    use super::*;

    #[test]
    fn scan_side_owns_compute_when_all_preds_done() {
        let j = JoinCounter::new();
        j.begin_scan(2);
        assert!(!j.notify());
        assert!(!j.notify());
        assert!(j.end_scan(0), "bias release must fire after both preds");
        assert_eq!(j.pending(), 0);
    }

    #[test]
    fn already_satisfied_preds_fold_into_end_scan() {
        let j = JoinCounter::new();
        j.begin_scan(3);
        assert!(!j.notify());
        // Two preds were observed computed during the scan.
        assert!(j.end_scan(2));
        assert_eq!(j.pending(), 0);
    }

    #[test]
    fn late_notify_owns_compute() {
        let j = JoinCounter::new();
        j.begin_scan(1);
        assert!(!j.end_scan(0), "pred outstanding: scanner must not fire");
        assert!(j.notify(), "last dependence owns the compute");
        assert_eq!(j.pending(), 0);
    }

    #[test]
    fn no_preds_fires_immediately() {
        let j = JoinCounter::new();
        j.begin_scan(0);
        assert!(j.end_scan(0));
    }
}
