//! The unified run report: every observable of one executor run in one
//! struct.
//!
//! Before this module the pieces were scattered — wall clock on the old
//! `StaticReport`, scheduler counters on
//! [`PoolStats`], remote-access percentages on
//! [`RemoteAccessReport`], and the autocolor
//! [`SelectionReport`] dropped on the
//! floor by `execute_auto`. [`RunReport`] aggregates all of them, plus the
//! coloring wall-clock and the runtime event trace, so a harness can print
//! or serialize one value per run.

use crate::metrics::RemoteAccessReport;
use nabbitc_autocolor::SelectionReport;
use nabbitc_graph::trace::Trace;
use nabbitc_runtime::{PoolStats, RuntimeTrace};
use std::time::Duration;

/// Everything one executor run produced, in one place.
///
/// Returned by [`StaticExecutor::execute`](crate::StaticExecutor::execute)
/// and both autocolored entry points. Fields that a given entry point
/// cannot populate are `None` / empty defaults: a plain `execute` has no
/// coloring phase and no selection; a run on an untraced pool has no
/// runtime trace.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Wall-clock execution time (the threaded run itself, excluding any
    /// coloring phase).
    pub elapsed: Duration,
    /// Wall-clock time spent inferring and applying colors before the run
    /// (`None` when the graph's own colors were used).
    pub coloring_elapsed: Option<Duration>,
    /// Remote-access accounting (zeros unless
    /// [`ExecOptions::count_remote`](crate::ExecOptions)).
    pub remote: RemoteAccessReport,
    /// Scheduler statistics for this run (steals, first-work waits, ...).
    pub stats: PoolStats,
    /// Per-node execution trace (empty unless
    /// [`ExecOptions::record_trace`](crate::ExecOptions)).
    pub trace: Trace,
    /// Runtime event trace — per-worker spawn/exec/steal/idle events —
    /// when the pool was built with tracing enabled
    /// ([`TraceConfig`](nabbitc_runtime::TraceConfig)), `None` otherwise.
    pub runtime_trace: Option<RuntimeTrace>,
    /// Which autocolor candidate won, the fallback flag, and the scoring
    /// cost — populated by
    /// [`execute_auto`](crate::StaticExecutor::execute_auto) only.
    pub selection: Option<SelectionReport>,
    /// Pre-flight schedule lint findings over the executed coloring —
    /// populated by [`execute_auto`](crate::StaticExecutor::execute_auto)
    /// when [`ExecOptions::lint`](crate::ExecOptions) is a gate other
    /// than [`LintGate::Off`](crate::LintGate), `None` otherwise.
    pub lint: Option<nabbitc_lint::LintReport>,
}

impl RunReport {
    /// Execution time in seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// Total time including any coloring phase.
    pub fn total_elapsed(&self) -> Duration {
        self.elapsed + self.coloring_elapsed.unwrap_or_default()
    }

    /// One-line human summary of the selection, or `None` when this run
    /// had none. Example:
    /// `auto: cp-level-aware (est 1234, 4 candidates, 1.2ms)`; a fallback
    /// selection is marked `[FALLBACK]`.
    pub fn selection_summary(&self) -> Option<String> {
        let sel = self.selection.as_ref()?;
        Some(format_selection(sel))
    }
}

/// Formats a [`SelectionReport`] as the one-line summary the bench
/// harnesses print (also used for [`RunReport::selection_summary`]).
pub fn format_selection(sel: &SelectionReport) -> String {
    format!(
        "auto: {}{} (est {}, {} candidates, {:.2?}){}",
        sel.chosen_name(),
        if sel.packed_estimate.is_some() {
            " [packed]"
        } else {
            ""
        },
        sel.chosen_estimate(),
        sel.candidates.len(),
        sel.elapsed,
        if sel.fallback { " [FALLBACK]" } else { "" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_empty() {
        let r = RunReport::default();
        assert_eq!(r.seconds(), 0.0);
        assert_eq!(r.total_elapsed(), Duration::ZERO);
        assert!(r.selection_summary().is_none());
        assert!(r.runtime_trace.is_none());
        assert_eq!(r.stats.total_tasks(), 0);
    }

    #[test]
    fn total_elapsed_includes_coloring() {
        let r = RunReport {
            elapsed: Duration::from_millis(30),
            coloring_elapsed: Some(Duration::from_millis(12)),
            ..RunReport::default()
        };
        assert_eq!(r.total_elapsed(), Duration::from_millis(42));
    }
}
