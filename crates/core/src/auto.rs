//! Autocolor integration: executors that infer their own colors.
//!
//! Three entry points:
//!
//! * [`StaticExecutor::execute_auto`] — **the default static path**: run
//!   any pre-built [`TaskGraph`] under colors inferred by the
//!   [`AutoSelect`] meta-assigner, which evaluates its whole portfolio
//!   and keeps the per-graph winner (edge-cut partitioning on stencils,
//!   level-aware partitioning on wavefronts) — no strategy choice needed
//!   from the caller;
//! * [`StaticExecutor::execute_autocolored`] — the same, under an
//!   *explicit* [`ColorAssigner`] for callers who already know which
//!   objective fits their shape (or want to sweep strategies, as the
//!   benches do);
//! * [`AutoColoredSpec`] — wrap any [`TaskSpec`] so its `color()` is
//!   answered by an [`OnlineAssigner`] (predecessor-majority vote with
//!   discovery hints and a load cap — hints carry affinity down the
//!   sink-first exploration order) instead of the user. On-demand
//!   discovery reveals the graph one key at a time, so the offline
//!   portfolio machinery cannot apply; the online vote is its dynamic
//!   counterpart. This is what makes the on-demand executor usable on
//!   task specs whose author never thought about NUMA:
//!   `DynamicExecutor::new(pool, Arc::new(AutoColoredSpec::new(spec, p)))`.
//!
//! All keep the scheduling machinery untouched — autocolor only changes
//! *which* color a task carries, never the stealing protocol.

use crate::dynamic::TaskSpec;
use crate::report::RunReport;
use crate::static_exec::StaticExecutor;
use nabbitc_autocolor::{apply_assignment, autocolor, AutoSelect, ColorAssigner, OnlineAssigner};
use nabbitc_color::Color;
use nabbitc_graph::{NodeId, TaskGraph};
use std::sync::Arc;
use std::time::Instant;

impl StaticExecutor {
    /// Executes `graph` under colors inferred by `assigner` (for this
    /// pool's worker count), instead of the graph's own colors. The
    /// graph's accesses are re-homed to the inferred colors (first-touch
    /// placement), so the remote-access report prices the inferred
    /// placement.
    ///
    /// Returns the report (with
    /// [`coloring_elapsed`](RunReport::coloring_elapsed) set to the
    /// assignment's wall-clock cost) plus the recolored graph, which
    /// callers should reuse when executing repeatedly (assignment is the
    /// expensive part).
    pub fn execute_autocolored<K>(
        &self,
        graph: &TaskGraph,
        assigner: &dyn ColorAssigner,
        kernel: Arc<K>,
    ) -> (RunReport, Arc<TaskGraph>)
    where
        K: Fn(NodeId, usize) + Send + Sync + 'static,
    {
        let coloring_started = Instant::now();
        let recolored = Arc::new(autocolor(graph, assigner, self.pool().workers()));
        let coloring_elapsed = coloring_started.elapsed();
        let mut report = self.execute(&recolored, kernel);
        report.coloring_elapsed = Some(coloring_elapsed);
        (report, recolored)
    }

    /// Executes `graph` under the default inferred coloring: the
    /// [`AutoSelect`] portfolio picks the assigner whose assignment the
    /// makespan estimator scores best for this pool's worker count. This
    /// is the entry point for callers with no data-distribution argument
    /// at all — the meta-selection makes the stencil-vs-wavefront
    /// strategy choice that [`execute_autocolored`] pushes onto the
    /// caller.
    ///
    /// Candidates are scored with the executor's cost model and topology
    /// ([`ExecOptions::cost`](crate::ExecOptions) /
    /// [`ExecOptions::topology`](crate::ExecOptions)) — override them via
    /// [`with_options`](StaticExecutor::with_options) to select under a
    /// different machine pricing (e.g. a heavier remote-byte ratio, or
    /// the paper's 8×10 NUMA topology, where same-domain cut edges are
    /// priced at local bandwidth and the winner is domain-packed).
    ///
    /// Returns the execution report and the recolored graph (reuse it
    /// when executing repeatedly — selection is the expensive part). The
    /// report's [`selection`](RunReport::selection) says which candidate
    /// won and why (including the fallback flag and the selection's own
    /// wall-clock cost), and
    /// [`coloring_elapsed`](RunReport::coloring_elapsed) covers the whole
    /// coloring phase (selection plus applying the winner).
    ///
    /// [`execute_autocolored`]: StaticExecutor::execute_autocolored
    pub fn execute_auto<K>(&self, graph: &TaskGraph, kernel: Arc<K>) -> (RunReport, Arc<TaskGraph>)
    where
        K: Fn(NodeId, usize) + Send + Sync + 'static,
    {
        let coloring_started = Instant::now();
        let mut select = AutoSelect::default().with_cost_model(self.options().cost.clone());
        if let Some(topo) = &self.options().topology {
            select = select.with_topology(topo.clone());
        }
        let (colors, selection) = select.select(graph, self.pool().workers());
        let mut recolored = graph.clone();
        apply_assignment(&mut recolored, &colors);
        let recolored = Arc::new(recolored);
        let coloring_elapsed = coloring_started.elapsed();
        let lint = self.preflight_lint(&recolored, selection.chosen_name());
        let mut report = self.execute(&recolored, kernel);
        report.coloring_elapsed = Some(coloring_elapsed);
        report.selection = Some(selection);
        report.lint = lint;
        (report, recolored)
    }

    /// Runs the [`ExecOptions::lint`](crate::ExecOptions) pre-flight gate
    /// over `graph` (already carrying the coloring about to execute) and
    /// returns the report to attach, panicking first when a denying gate
    /// is tripped. `None` iff the gate is [`LintGate::Off`].
    fn preflight_lint(
        &self,
        graph: &TaskGraph,
        coloring: &str,
    ) -> Option<nabbitc_lint::LintReport> {
        use crate::static_exec::LintGate;
        let opts = self.options();
        if opts.lint == LintGate::Off {
            return None;
        }
        let workers = self.pool().workers();
        let diags = nabbitc_lint::lint_graph(
            graph,
            workers,
            &opts.cost,
            opts.topology.as_ref(),
            &nabbitc_lint::LintConfig::default(),
        );
        let report = nabbitc_lint::LintReport::new("execute_auto", coloring, workers, diags);
        let deny = match opts.lint {
            LintGate::Off | LintGate::Report => false,
            LintGate::DenyErrors => report.has_errors(),
            LintGate::DenyWarnings => report.has_warnings(),
        };
        assert!(
            !deny,
            "schedule lint gate ({:?}) tripped before execution:\n{}",
            opts.lint,
            report.render()
        );
        Some(report)
    }
}

/// A [`TaskSpec`] adapter that overrides `color()` with an online
/// auto-colorer; `predecessors()` and `compute()` pass through.
///
/// Colors are decided the first time the executor asks about a key —
/// which, under the on-demand protocol, is when the key is discovered —
/// and cached thereafter, preserving the executor's requirement that
/// `color()` is stable per key.
pub struct AutoColoredSpec<S: TaskSpec> {
    inner: Arc<S>,
    assigner: OnlineAssigner<S::Key>,
}

impl<S: TaskSpec> AutoColoredSpec<S> {
    /// Wraps `inner` for a machine with `workers` workers.
    pub fn new(inner: Arc<S>, workers: usize) -> Self {
        AutoColoredSpec {
            inner,
            assigner: OnlineAssigner::new(workers),
        }
    }

    /// As [`new`](Self::new), with an explicit load-cap slack (see
    /// [`OnlineAssigner::with_cap_slack`]).
    pub fn with_cap_slack(inner: Arc<S>, workers: usize, cap_slack: f64) -> Self {
        AutoColoredSpec {
            inner,
            assigner: OnlineAssigner::with_cap_slack(workers, cap_slack),
        }
    }

    /// The wrapped spec.
    pub fn inner(&self) -> &Arc<S> {
        &self.inner
    }

    /// The online assigner (for inspecting loads after a run).
    pub fn assigner(&self) -> &OnlineAssigner<S::Key> {
        &self.assigner
    }
}

impl<S: TaskSpec> TaskSpec for AutoColoredSpec<S> {
    type Key = S::Key;

    fn predecessors(&self, key: &Self::Key) -> Vec<Self::Key> {
        self.inner.predecessors(key)
    }

    fn color(&self, key: &Self::Key) -> Color {
        self.assigner
            .color_for_with(key, || self.inner.predecessors(key))
    }

    fn compute(&self, key: &Self::Key, worker: usize) {
        self.inner.compute(key, worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicExecutor;
    use crate::static_exec::ExecOptions;
    use nabbitc_autocolor::{RecursiveBisection, RoundRobin};
    use nabbitc_graph::analysis::edge_cut;
    use nabbitc_graph::generate;
    use nabbitc_runtime::{Pool, PoolConfig};
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

    #[test]
    fn static_autocolored_executes_every_node_once() {
        let graph = Arc::new(generate::wavefront(16, 16, 2, 1)); // monochrome input
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let exec = StaticExecutor::new(pool).with_options(ExecOptions {
            record_trace: true,
            count_remote: true,
            ..ExecOptions::default()
        });
        let counts: Arc<Vec<AtomicU32>> =
            Arc::new((0..graph.node_count()).map(|_| AtomicU32::new(0)).collect());
        let c2 = counts.clone();
        let (report, recolored) = exec.execute_autocolored(
            &graph,
            &RecursiveBisection::default(),
            Arc::new(move |u: NodeId, _w: usize| {
                c2[u as usize].fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        report.trace.validate(&recolored).expect("valid trace");
        // The inferred coloring actually uses the machine.
        let mut used: Vec<Color> = recolored.nodes().map(|u| recolored.color(u)).collect();
        used.sort_unstable();
        used.dedup();
        assert!(used.len() > 1, "expected multiple colors, got {used:?}");
        assert!(used.iter().all(|c| c.is_valid() && c.index() < 4));
    }

    #[test]
    fn static_autocolored_cp_level_aware_spreads_every_wide_level() {
        use nabbitc_autocolor::CpLevelAware;
        use nabbitc_graph::analysis::{level_profile, level_serialization};
        let workers = 4;
        let graph = Arc::new(generate::wavefront(16, 16, 2, 1)); // monochrome input
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
        let exec = StaticExecutor::new(pool);
        let counts: Arc<Vec<AtomicU32>> =
            Arc::new((0..graph.node_count()).map(|_| AtomicU32::new(0)).collect());
        let c2 = counts.clone();
        let (_report, recolored) = exec.execute_autocolored(
            &graph,
            &CpLevelAware::default(),
            Arc::new(move |u: NodeId, _w: usize| {
                c2[u as usize].fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        // Every wide anti-diagonal keeps more than one worker busy.
        let profile = level_profile(&recolored);
        let ser = level_serialization(&recolored, &profile);
        for l in 0..profile.level_count() {
            if profile.widths[l] >= workers {
                assert!(ser.per_level[l] < 1.0, "level {l} serialized");
            }
        }
    }

    #[test]
    fn execute_auto_runs_the_portfolio_winner() {
        use nabbitc_autocolor::CandidateOutcome;
        use nabbitc_graph::analysis::estimate_makespan_colored;
        let workers = 4;
        let graph = Arc::new(generate::wavefront(16, 16, 2, 1)); // monochrome input
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
        let exec = StaticExecutor::new(pool);
        let counts: Arc<Vec<AtomicU32>> =
            Arc::new((0..graph.node_count()).map(|_| AtomicU32::new(0)).collect());
        let c2 = counts.clone();
        let (report, recolored) = exec.execute_auto(
            &graph,
            Arc::new(move |u: NodeId, _w: usize| {
                c2[u as usize].fetch_add(1, Ordering::SeqCst);
            }),
        );
        let selection = report.selection.as_ref().expect("execute_auto selects");
        assert!(!selection.fallback);
        assert!(report.coloring_elapsed.expect("coloring timed") >= selection.elapsed);
        assert!(report.selection_summary().is_some());
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
        // The graph actually carries the winning candidate's colors.
        let colors: Vec<Color> = recolored.nodes().map(|u| recolored.color(u)).collect();
        assert!(colors.iter().all(|c| c.is_valid() && c.index() < workers));
        assert_eq!(
            estimate_makespan_colored(&recolored, &colors, workers, &selection.cost),
            selection.chosen_estimate()
        );
        // Every scored candidate lost to (or tied) the winner.
        for (name, outcome) in &selection.candidates {
            if let CandidateOutcome::Estimated(e) = outcome {
                assert!(
                    *e >= selection.chosen_estimate(),
                    "{name} scored {e} below the winner"
                );
            }
        }
    }

    #[test]
    fn execute_auto_plumbs_the_topology_into_the_selection() {
        use nabbitc_graph::analysis::estimate_makespan_colored_on;
        use nabbitc_runtime::NumaTopology;
        let workers = 4;
        let topo = NumaTopology::new(2, 2).cost_view();
        let graph = Arc::new(generate::iterated_stencil(6, 32, 2, 1));
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
        let exec = StaticExecutor::new(pool).with_options(ExecOptions {
            topology: Some(topo.clone()),
            ..ExecOptions::default()
        });
        let (report, recolored) = exec.execute_auto(&graph, Arc::new(|_u: NodeId, _w: usize| {}));
        let selection = report.selection.as_ref().expect("execute_auto selects");
        assert_eq!(selection.topology, topo);
        // The reported estimate is the recolored graph's domain-aware
        // estimate under the plumbed topology.
        let colors: Vec<Color> = recolored.nodes().map(|u| recolored.color(u)).collect();
        assert_eq!(
            estimate_makespan_colored_on(&recolored, &colors, workers, &selection.cost, &topo),
            selection.chosen_estimate()
        );
    }

    #[test]
    fn static_autocolored_bisection_cuts_less_than_round_robin() {
        let graph = Arc::new(generate::iterated_stencil(10, 64, 2, 1));
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let exec = StaticExecutor::new(pool);
        let noop = Arc::new(|_u: NodeId, _w: usize| {});
        let (_, g_bisect) =
            exec.execute_autocolored(&graph, &RecursiveBisection::default(), noop.clone());
        let (_, g_rr) = exec.execute_autocolored(&graph, &RoundRobin, noop);
        assert!(edge_cut(&g_bisect) < edge_cut(&g_rr));
    }

    #[test]
    fn lint_gate_off_leaves_report_unpopulated() {
        let graph = Arc::new(generate::wavefront(16, 16, 2, 1));
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let exec = StaticExecutor::new(pool);
        let (report, _) = exec.execute_auto(&graph, Arc::new(|_u: NodeId, _w: usize| {}));
        assert!(report.lint.is_none(), "default gate must not lint");
    }

    #[test]
    fn lint_gate_report_attaches_preflight_findings() {
        use crate::static_exec::LintGate;
        let graph = Arc::new(generate::wavefront(16, 16, 2, 1));
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let exec = StaticExecutor::new(pool).with_options(ExecOptions {
            lint: LintGate::Report,
            ..ExecOptions::default()
        });
        let (report, _) = exec.execute_auto(&graph, Arc::new(|_u: NodeId, _w: usize| {}));
        let lint = report.lint.as_ref().expect("Report gate attaches findings");
        assert_eq!(lint.target, "execute_auto");
        assert_eq!(lint.workers, 4);
        assert_eq!(
            lint.coloring,
            report.selection.as_ref().unwrap().chosen_name(),
            "lint runs against the portfolio winner's coloring"
        );
        assert!(!lint.has_errors(), "a sane auto schedule has no errors");
    }

    #[test]
    #[should_panic(expected = "schedule lint gate")]
    fn lint_gate_deny_warnings_refuses_a_degenerate_schedule() {
        use crate::static_exec::LintGate;
        // A chain is width 1 on a 4-worker pool: NL007 (Warn) must trip
        // the DenyWarnings gate before any node executes.
        let graph = Arc::new(generate::chain(64, 2, 1));
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let exec = StaticExecutor::new(pool).with_options(ExecOptions {
            lint: LintGate::DenyWarnings,
            ..ExecOptions::default()
        });
        let _ = exec.execute_auto(&graph, Arc::new(|_u: NodeId, _w: usize| {}));
    }

    /// A Pascal-triangle spec with no color function of its own.
    struct UncoloredPascal;

    impl TaskSpec for UncoloredPascal {
        type Key = (usize, usize);

        fn predecessors(&self, &(i, j): &Self::Key) -> Vec<Self::Key> {
            let mut p = Vec::new();
            if i > 0 {
                if j > 0 {
                    p.push((i - 1, j - 1));
                }
                if j < i {
                    p.push((i - 1, j));
                }
            }
            p
        }

        fn color(&self, _: &Self::Key) -> Color {
            // What an uncolored user spec looks like: a constant. The
            // adapter must override this.
            Color(0)
        }

        fn compute(&self, _: &Self::Key, _: usize) {}
    }

    #[test]
    fn dynamic_adapter_executes_and_spreads_colors() {
        let workers = 4;
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
        let spec = Arc::new(AutoColoredSpec::new(Arc::new(UncoloredPascal), workers));
        let exec = DynamicExecutor::new(pool, spec.clone());
        let report = exec.execute((40, 20));
        assert_eq!(
            report.nodes_executed as usize,
            spec.assigner().assigned_count()
        );
        let loads = spec.assigner().loads();
        assert_eq!(loads.len(), workers);
        assert!(
            loads.iter().all(|&l| l > 0),
            "every color should receive keys: {loads:?}"
        );
        // Load cap: no color hogs the triangle.
        let max = *loads.iter().max().unwrap();
        let total: u64 = loads.iter().sum();
        assert!(max as f64 <= 0.5 * total as f64, "{loads:?}");
    }

    #[test]
    fn adapter_color_is_stable_per_key() {
        let spec = AutoColoredSpec::new(Arc::new(UncoloredPascal), 3);
        let k = (7usize, 3usize);
        let first = spec.color(&k);
        for _ in 0..10 {
            assert_eq!(spec.color(&k), first);
        }
        assert!(first.is_valid() && first.index() < 3);
    }

    #[test]
    fn adapter_compute_passes_through() {
        struct CountingSpec(AtomicU64);
        impl TaskSpec for CountingSpec {
            type Key = u32;
            fn predecessors(&self, &k: &u32) -> Vec<u32> {
                if k == 0 {
                    vec![]
                } else {
                    vec![k - 1]
                }
            }
            fn color(&self, _: &u32) -> Color {
                Color(0)
            }
            fn compute(&self, _: &u32, _: usize) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let inner = Arc::new(CountingSpec(AtomicU64::new(0)));
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(2)));
        let exec = DynamicExecutor::new(pool, Arc::new(AutoColoredSpec::new(inner.clone(), 2)));
        let report = exec.execute(500);
        assert_eq!(report.nodes_executed, 501);
        assert_eq!(inner.0.load(Ordering::SeqCst), 501);
    }
}
