//! Executor for pre-built task graphs.
//!
//! All nodes of a [`TaskGraph`] are known up front, so readiness is tracked
//! with per-node atomic join counters instead of the dynamic node table:
//! when a node finishes, it decrements each successor's counter and the
//! worker that brings a counter to zero takes responsibility for spawning
//! the successor (Nabbit's `compute_and_notify` restated as dataflow; see
//! DESIGN.md "Reality substitutions").
//!
//! Every batch of ready nodes — the sources at the start of the job, and
//! each node's newly-ready successors — flows through
//! [`spawn::spawn_colors`](crate::spawn::spawn_colors), so the executor is
//! NabbitC when the pool's policy has colored steals and vanilla Nabbit
//! when it does not (the spawning order is color-guided either way; with
//! Nabbit's policy the color tags are simply never consulted, matching the
//! paper's baseline which runs the same task graph under plain Cilk
//! stealing).

use crate::metrics::RemoteCounters;
use crate::report::RunReport;
use crate::spawn::{spawn_colors, ColoredItem};
use nabbitc_color::{Color, ColorSet};
use nabbitc_graph::trace::{Trace, TraceEvent};
use nabbitc_graph::{NodeId, TaskGraph};
use nabbitc_runtime::sync::{AtomicU32, AtomicU64, Mutex, Ordering};
use nabbitc_runtime::{Pool, WorkerContext};
use std::sync::Arc;
use std::time::Instant;

/// Execution options.
#[derive(Clone, Debug, Default)]
pub struct ExecOptions {
    /// Record a full execution trace (adds per-node clock reads + a lock).
    pub record_trace: bool,
    /// Count remote accesses with the §V-B metric (cheap; on by default in
    /// the benchmark harnesses).
    pub count_remote: bool,
    /// Cost model used wherever this executor prices a schedule — today
    /// that is [`execute_auto`](StaticExecutor::execute_auto)'s
    /// `AutoSelect` scoring (cross-color edges priced as remote-byte
    /// bandwidth plus steal latency). The threaded execution itself runs
    /// on wall clock and ignores it.
    pub cost: nabbitc_cost::CostModel,
    /// Worker→domain topology used wherever this executor prices a
    /// schedule: with `Some(topo)`,
    /// [`execute_auto`](StaticExecutor::execute_auto) scores candidates
    /// domain-aware (same-domain cut edges move bytes at local bandwidth)
    /// and runs the domain-packing post-pass on the winner. `None` (the
    /// default) prices every worker as its own domain. Like `cost`, the
    /// threaded execution itself ignores it — use e.g.
    /// `NumaTopology::paper_machine().truncated(p).cost_view()` to select
    /// for the paper machine.
    pub topology: Option<nabbitc_cost::Topology>,
    /// Pre-flight schedule linting for
    /// [`execute_auto`](StaticExecutor::execute_auto): with a gate other
    /// than [`LintGate::Off`], the inferred coloring is run through
    /// [`nabbitc_lint::lint_graph`] (priced with this options struct's
    /// `cost` and `topology`) before any task executes, and the report is
    /// attached to [`RunReport::lint`](crate::RunReport::lint). The
    /// denying gates turn findings into panics, for harnesses that want
    /// a hard stop on a degenerate schedule. Plain `execute` never lints
    /// — the caller's own coloring is taken as intended.
    pub lint: LintGate,
}

/// What [`execute_auto`](StaticExecutor::execute_auto) does with schedule
/// lint findings (see [`ExecOptions::lint`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LintGate {
    /// No linting (the default): zero pre-flight cost.
    #[default]
    Off,
    /// Lint and attach the report to the [`RunReport`]; never fails.
    Report,
    /// Lint, attach, and panic if any
    /// [`Error`](nabbitc_lint::Severity::Error) finding is present.
    DenyErrors,
    /// Lint, attach, and panic if any finding of severity
    /// [`Warn`](nabbitc_lint::Severity::Warn) or worse is present.
    DenyWarnings,
}

struct ExecState<K: ?Sized> {
    graph: Arc<TaskGraph>,
    join: Vec<AtomicU32>,
    kernel: Arc<K>,
    remote: Option<RemoteCounters>,
    trace: Option<TraceState>,
}

struct TraceState {
    origin: Instant,
    events: Vec<Mutex<Vec<TraceEvent>>>, // per worker
}

/// A work item: node id + its color (colors are read out of the graph once
/// at batch construction).
#[derive(Clone, Copy)]
struct Item(NodeId, Color);

impl ColoredItem for Item {
    fn color(&self) -> Color {
        self.1
    }
}

/// Executes [`TaskGraph`]s on a [`Pool`].
///
/// The executor is reusable: [`execute`](Self::execute) may be called many
/// times (the PageRank benchmark runs ten power iterations over the same
/// pool, for instance).
pub struct StaticExecutor {
    pool: Arc<Pool>,
    options: ExecOptions,
}

impl StaticExecutor {
    /// Creates an executor on `pool`.
    pub fn new(pool: Arc<Pool>) -> Self {
        StaticExecutor {
            pool,
            options: ExecOptions {
                record_trace: false,
                count_remote: true,
                cost: nabbitc_cost::CostModel::default(),
                topology: None,
                lint: LintGate::Off,
            },
        }
    }

    /// Sets execution options.
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The execution options in effect.
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// Executes `graph`, invoking `kernel(node, worker_id)` once per node
    /// with all dependences satisfied. Blocks until the whole graph is
    /// done.
    ///
    /// The returned [`RunReport`] covers this run only: statistics are
    /// reset on entry, and when the pool was built with event tracing
    /// enabled, so are the event rings — `runtime_trace` is then the
    /// run's own event stream.
    pub fn execute<K>(&self, graph: &Arc<TaskGraph>, kernel: Arc<K>) -> RunReport
    where
        K: Fn(NodeId, usize) + Send + Sync + 'static,
    {
        let n = graph.node_count();
        let workers = self.pool.workers();
        let state = Arc::new(ExecState {
            graph: graph.clone(),
            join: (0..n)
                .map(|u| AtomicU32::new(graph.in_degree(u as NodeId) as u32))
                .collect(),
            kernel,
            remote: self
                .options
                .count_remote
                .then(|| RemoteCounters::new(self.pool.topology().clone(), workers)),
            trace: self.options.record_trace.then(|| TraceState {
                origin: Instant::now(),
                events: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            }),
        });

        // Executed-node counter defends against double execution in debug.
        let executed = Arc::new(AtomicU64::new(0));

        self.pool.reset_stats();
        self.pool.reset_trace();
        let started = Instant::now();
        {
            let state = state.clone();
            let executed = executed.clone();
            let root_colors: ColorSet = graph.sources().iter().map(|&u| graph.color(u)).collect();
            self.pool.run(root_colors, move |ctx| {
                let sources: Vec<Item> = state
                    .graph
                    .sources()
                    .into_iter()
                    .map(|u| Item(u, state.graph.color(u)))
                    .collect();
                let st = state.clone();
                let ex = executed.clone();
                spawn_colors(
                    ctx,
                    sources,
                    Arc::new(move |ctx: &mut WorkerContext<'_>, item: Item| {
                        process_node(&st, &ex, ctx, item.0);
                    }),
                );
            });
        }
        let elapsed = started.elapsed();

        debug_assert_eq!(executed.load(Ordering::SeqCst), n as u64);

        let state = Arc::try_unwrap(state)
            .unwrap_or_else(|_| panic!("executor state leaked past job completion"));
        let trace = match state.trace {
            Some(ts) => Trace {
                events: ts.events.into_iter().flat_map(|m| m.into_inner()).collect(),
            },
            None => Trace::default(),
        };
        RunReport {
            elapsed,
            coloring_elapsed: None,
            remote: state
                .remote
                .as_ref()
                .map(|r| r.report())
                .unwrap_or_default(),
            stats: self.pool.stats(),
            trace,
            runtime_trace: self
                .pool
                .tracing_enabled()
                .then(|| self.pool.trace_snapshot()),
            selection: None,
            lint: None,
        }
    }
}

fn process_node<K>(
    state: &Arc<ExecState<K>>,
    executed: &Arc<AtomicU64>,
    ctx: &mut WorkerContext<'_>,
    mut u: NodeId,
) where
    K: Fn(NodeId, usize) + Send + Sync + 'static,
{
    let g = &state.graph;
    // A single ready successor is executed directly by the same worker
    // (the paper's "recursively execute that node"); we iterate instead of
    // recursing so chain-shaped graphs cannot overflow the stack.
    loop {
        let me = ctx.worker_id();

        if let Some(rc) = &state.remote {
            rc.record_node(
                me,
                g.color(u),
                g.predecessors(u).iter().map(|&p| g.color(p)),
            );
        }

        let start_ns = state
            .trace
            .as_ref()
            .map(|t| t.origin.elapsed().as_nanos() as u64);

        (state.kernel)(u, me);
        executed.fetch_add(1, Ordering::Relaxed);

        if let (Some(ts), Some(start)) = (&state.trace, start_ns) {
            let end = ts.origin.elapsed().as_nanos() as u64;
            ts.events[me].lock().push(TraceEvent {
                node: u,
                worker: me,
                start,
                end,
            });
        }

        // compute_and_notify: release successors; newly-ready ones are
        // spawned through the color-aware path.
        let mut ready: Vec<Item> = Vec::new();
        for &s in g.successors(u) {
            if state.join[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(Item(s, g.color(s)));
            }
        }
        match ready.len() {
            0 => return,
            1 => {
                u = ready.pop().expect("len checked").0;
            }
            _ => {
                let st = state.clone();
                let ex = executed.clone();
                spawn_colors(
                    ctx,
                    ready,
                    Arc::new(move |ctx: &mut WorkerContext<'_>, item: Item| {
                        process_node(&st, &ex, ctx, item.0);
                    }),
                );
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nabbitc_graph::generate;
    use nabbitc_runtime::{NumaTopology, PoolConfig, StealPolicy};
    use std::sync::atomic::AtomicU32 as A32;

    fn run_and_check(graph: TaskGraph, pool: Pool) -> RunReport {
        let graph = Arc::new(graph);
        let pool = Arc::new(pool);
        let exec = StaticExecutor::new(pool).with_options(ExecOptions {
            record_trace: true,
            count_remote: true,
            ..ExecOptions::default()
        });
        let counts: Arc<Vec<A32>> =
            Arc::new((0..graph.node_count()).map(|_| A32::new(0)).collect());
        let c2 = counts.clone();
        let report = exec.execute(
            &graph,
            Arc::new(move |u: NodeId, _w: usize| {
                c2[u as usize].fetch_add(1, Ordering::SeqCst);
            }),
        );
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "node {i} executed once");
        }
        report.trace.validate(&graph).expect("trace must validate");
        report
    }

    #[test]
    fn wavefront_single_worker() {
        run_and_check(
            generate::wavefront(8, 8, 1, 1),
            Pool::new(PoolConfig::nabbitc(1)),
        );
    }

    #[test]
    fn wavefront_many_workers() {
        run_and_check(
            generate::wavefront(20, 20, 1, 8),
            Pool::new(PoolConfig::nabbitc(8)),
        );
    }

    #[test]
    fn layered_random_nabbit_policy() {
        run_and_check(
            generate::layered_random(20, 30, 4, (1, 5), 8, 3),
            Pool::new(PoolConfig::nabbit(8)),
        );
    }

    #[test]
    fn chain_preserves_order() {
        // A chain is fully sequential; the trace validator enforces the
        // dependence order.
        run_and_check(
            generate::chain(500, 1, 4),
            Pool::new(PoolConfig::nabbitc(4)),
        );
    }

    #[test]
    fn independent_fanout() {
        run_and_check(
            generate::independent(2000, 1, 8),
            Pool::new(PoolConfig::nabbitc(8)),
        );
    }

    #[test]
    fn stencil_iterated() {
        run_and_check(
            generate::iterated_stencil(10, 32, 1, 8),
            Pool::new(PoolConfig::nabbitc(8)),
        );
    }

    #[test]
    fn remote_metric_zero_on_uma() {
        let report = run_and_check(
            generate::wavefront(10, 10, 1, 4),
            Pool::new(PoolConfig::nabbitc(4)), // UMA topology
        );
        assert_eq!(report.remote.pct_remote(), 0.0);
        assert!(report.remote.total() > 0);
    }

    #[test]
    fn remote_metric_nonzero_across_domains() {
        // 2 domains x 2 cores; colors span domains, so a locality-oblivious
        // policy will incur remote accesses on most runs. We only assert the
        // metric is *counted* (total > 0) and bounded.
        let topo = NumaTopology::new(2, 2);
        let pool = Pool::new(
            PoolConfig::nabbit(4)
                .with_topology(topo)
                .with_policy(StealPolicy::nabbit()),
        );
        let report = run_and_check(generate::layered_random(10, 40, 3, (1, 3), 4, 9), pool);
        assert!(report.remote.total() > 0);
        assert!(report.remote.pct_remote() <= 100.0);
    }

    #[test]
    fn executor_reusable_across_runs() {
        let graph = Arc::new(generate::wavefront(12, 12, 1, 4));
        let pool = Arc::new(Pool::new(PoolConfig::nabbitc(4)));
        let exec = StaticExecutor::new(pool);
        for _ in 0..5 {
            let done = Arc::new(AtomicU64::new(0));
            let d2 = done.clone();
            exec.execute(
                &graph,
                Arc::new(move |_u, _w| {
                    d2.fetch_add(1, Ordering::SeqCst);
                }),
            );
            assert_eq!(done.load(Ordering::SeqCst), graph.node_count() as u64);
        }
    }

    #[test]
    fn stats_populated() {
        let report = run_and_check(
            generate::independent(5000, 1, 8),
            Pool::new(PoolConfig::nabbitc(8)),
        );
        assert!(report.stats.total_tasks() > 0);
        assert_eq!(
            report.stats.workers.len(),
            8,
            "stats should cover every worker"
        );
    }
}
