//! `gather_colors` + `spawn_colors` — morphing continuations (§III, Fig. 3).
//!
//! When Nabbit spawns a batch of nodes (predecessors during exploration,
//! successors during notification) it is oblivious to order. NabbitC
//! instead:
//!
//! 1. groups the batch by color (`gather_colors`, Fig. 4);
//! 2. recursively splits the color groups in half, *swapping* the halves so
//!    the spawning worker's own color lands in the half it processes
//!    immediately while the other half becomes a stealable task tagged with
//!    exactly its colors (`spawn_colors`, Fig. 3) — the morphing
//!    continuation;
//! 3. within a single color, splits recursively like a parallel-for
//!    (`spawn_nodes`), each stealable piece tagged with the singleton
//!    color.
//!
//! If the worker's color is absent, the batch is processed in its original
//! order — "a worker does not stall even if it can not find the work of its
//! color" (§III).

use nabbitc_color::{Color, ColorSet};
use nabbitc_runtime::{SpawnBatch, WorkerContext};
use std::sync::Arc;

/// Work items routed through color-aware spawning.
pub trait ColoredItem: Send + 'static {
    /// The item's locality color.
    fn color(&self) -> Color;
}

impl ColoredItem for (u32, Color) {
    fn color(&self) -> Color {
        self.1
    }
}

/// Groups `items` by color, preserving encounter order within each group
/// and ordering groups by color — the paper's `gather_colors` (Fig. 4).
pub fn gather_colors<I: ColoredItem>(items: Vec<I>) -> Vec<(Color, Vec<I>)> {
    let mut groups: Vec<(Color, Vec<I>)> = Vec::new();
    for item in items {
        let c = item.color();
        match groups.binary_search_by_key(&c, |g| g.0) {
            Ok(i) => groups[i].1.push(item),
            Err(i) => groups.insert(i, (c, vec![item])),
        }
    }
    groups
}

/// Color-aware batch spawn: the paper's `spawn_colors` entry point.
///
/// `process` is invoked exactly once per item, on whichever worker ends up
/// owning it after the color-guided splits and any steals.
pub fn spawn_colors<I, F>(ctx: &mut WorkerContext<'_>, items: Vec<I>, process: Arc<F>)
where
    I: ColoredItem,
    F: Fn(&mut WorkerContext<'_>, I) + Send + Sync + 'static,
{
    let groups = gather_colors(items);
    spawn_color_groups(ctx, groups, process);
}

fn colors_of<I: ColoredItem>(groups: &[(Color, Vec<I>)]) -> ColorSet {
    groups.iter().map(|g| g.0).collect()
}

fn spawn_color_groups<I, F>(
    ctx: &mut WorkerContext<'_>,
    mut groups: Vec<(Color, Vec<I>)>,
    process: Arc<F>,
) where
    I: ColoredItem,
    F: Fn(&mut WorkerContext<'_>, I) + Send + Sync + 'static,
{
    // Every stealable piece this release creates — color-group halves and
    // same-color node halves alike — goes into one batch, published with
    // a single bottom store and Release fence instead of one per spawn.
    // The deque order is identical to spawning one at a time, so the
    // morphing-continuation guarantees are unchanged.
    let c_p = ctx.color();
    let mut batch = ctx.spawn_batch();
    let inline = loop {
        match groups.len() {
            0 => break None,
            1 => {
                let (color, nodes) = groups.pop().expect("len checked");
                break halve_into(&mut batch, color, nodes, &process);
            }
            _ => {
                let mid = groups.len() / 2;
                let mut second: Vec<_> = groups.split_off(mid);
                let mut first = groups;
                // Morph: make sure the worker's own color is in the half
                // it will process immediately (the paper swaps when c_p
                // is in the second half; equivalently we swap it into
                // `first`).
                if second.iter().any(|g| g.0 == c_p) {
                    std::mem::swap(&mut first, &mut second);
                }
                // cilkrts_set_next_colors(second.keys()) + cilk_spawn:
                // the continuation carrying the non-preferred colors
                // becomes a stealable task tagged with exactly those
                // colors.
                let second_colors = colors_of(&second);
                let p2 = process.clone();
                batch.add(second_colors, move |ctx| {
                    spawn_color_groups(ctx, second, p2);
                });
                groups = first;
            }
        }
    };
    batch.publish();
    if let Some(item) = inline {
        process(ctx, item);
    }
}

/// Parallel-for over same-colored nodes: the paper's `spawn_nodes`.
fn spawn_nodes<I, F>(ctx: &mut WorkerContext<'_>, color: Color, nodes: Vec<I>, process: Arc<F>)
where
    I: ColoredItem,
    F: Fn(&mut WorkerContext<'_>, I) + Send + Sync + 'static,
{
    let mut batch = ctx.spawn_batch();
    let inline = halve_into(&mut batch, color, nodes, &process);
    batch.publish();
    if let Some(item) = inline {
        process(ctx, item);
    }
}

/// Queues the stealable halves of `nodes` (each tagged with the singleton
/// color) and returns the one item the caller processes inline.
fn halve_into<I, F>(
    batch: &mut SpawnBatch<'_, '_>,
    color: Color,
    mut nodes: Vec<I>,
    process: &Arc<F>,
) -> Option<I>
where
    I: ColoredItem,
    F: Fn(&mut WorkerContext<'_>, I) + Send + Sync + 'static,
{
    loop {
        match nodes.len() {
            0 => return None,
            1 => return Some(nodes.pop().expect("len checked")),
            _ => {
                let mid = nodes.len() / 2;
                let second = nodes.split_off(mid);
                let p2 = process.clone();
                let cs = ColorSet::singleton(color);
                batch.add(cs, move |ctx| {
                    spawn_nodes(ctx, color, second, p2);
                });
                // Iterative recursion into the first half.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nabbitc_runtime::{Pool, PoolConfig};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn gather_groups_by_color_sorted() {
        let items = vec![
            (0u32, Color(2)),
            (1, Color(0)),
            (2, Color(2)),
            (3, Color(1)),
            (4, Color(0)),
        ];
        let groups = gather_colors(items);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, Color(0));
        assert_eq!(groups[0].1, vec![(1, Color(0)), (4, Color(0))]);
        assert_eq!(groups[1].0, Color(1));
        assert_eq!(groups[2].0, Color(2));
        assert_eq!(groups[2].1, vec![(0, Color(2)), (2, Color(2))]);
    }

    #[test]
    fn gather_empty() {
        let groups = gather_colors(Vec::<(u32, Color)>::new());
        assert!(groups.is_empty());
    }

    #[test]
    fn gather_single_color() {
        let items: Vec<(u32, Color)> = (0..10).map(|i| (i, Color(7))).collect();
        let groups = gather_colors(items);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 10);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let pool = Pool::new(PoolConfig::nabbitc(4));
        const N: usize = 10_000;
        let counts: Arc<Vec<AtomicUsize>> = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
        let c2 = counts.clone();
        pool.run(ColorSet::all(4), move |ctx| {
            let items: Vec<(u32, Color)> =
                (0..N as u32).map(|i| (i, Color((i % 4) as u16))).collect();
            let c3 = c2.clone();
            spawn_colors(
                ctx,
                items,
                Arc::new(move |_ctx: &mut WorkerContext<'_>, item: (u32, Color)| {
                    c3[item.0 as usize].fetch_add(1, Ordering::SeqCst);
                }),
            );
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn preferred_color_processed_first_by_spawner() {
        // On a single worker nothing is ever stolen, so the worker's own
        // color must be fully processed before any other color — the
        // morphing-continuation guarantee.
        let pool = Pool::new(PoolConfig::nabbitc(1));
        let order: Arc<Mutex<Vec<(u32, Color)>>> = Arc::new(Mutex::new(Vec::new()));
        let o2 = order.clone();
        pool.run(ColorSet::all(1), move |ctx| {
            // Worker 0 has color 0; give it items of colors 0..4.
            let items: Vec<(u32, Color)> = (0..16u32).map(|i| (i, Color((i % 4) as u16))).collect();
            let o3 = o2.clone();
            spawn_colors(
                ctx,
                items,
                Arc::new(move |_ctx: &mut WorkerContext<'_>, item: (u32, Color)| {
                    o3.lock().push(item);
                }),
            );
        });
        let order = order.lock();
        assert_eq!(order.len(), 16);
        let first_own: Vec<Color> = order.iter().take(4).map(|i| i.1).collect();
        assert!(
            first_own.iter().all(|&c| c == Color(0)),
            "worker 0 must process its own color first, got {first_own:?}"
        );
    }

    #[test]
    fn absent_color_does_not_stall() {
        // Worker color not present in the batch: items still processed.
        let pool = Pool::new(PoolConfig::nabbitc(1));
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        pool.run(ColorSet::all(1), move |ctx| {
            let items: Vec<(u32, Color)> = (0..8u32).map(|i| (i, Color(5))).collect();
            let n3 = n2.clone();
            spawn_colors(
                ctx,
                items,
                Arc::new(move |_ctx: &mut WorkerContext<'_>, _| {
                    n3.fetch_add(1, Ordering::SeqCst);
                }),
            );
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn large_multicolor_batch_under_contention() {
        let pool = Pool::new(PoolConfig::nabbitc(8));
        const N: usize = 50_000;
        let total = Arc::new(AtomicUsize::new(0));
        let t2 = total.clone();
        pool.run(ColorSet::all(8), move |ctx| {
            let items: Vec<(u32, Color)> =
                (0..N as u32).map(|i| (i, Color((i % 8) as u16))).collect();
            let t3 = t2.clone();
            spawn_colors(
                ctx,
                items,
                Arc::new(move |_ctx: &mut WorkerContext<'_>, _| {
                    t3.fetch_add(1, Ordering::SeqCst);
                }),
            );
        });
        assert_eq!(total.load(Ordering::SeqCst), N);
    }
}
