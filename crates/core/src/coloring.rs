//! Coloring strategies — correct, bad (Table II), and invalid (Table III).
//!
//! The paper's coloring contract (§III, *Optimizing locality through
//! coloring*): data is distributed so each worker initializes a unique
//! region; a node is colored by the worker owning the largest fraction of
//! the data it touches ("majority coloring"). Two adversarial variants
//! probe the cost of getting this wrong:
//!
//! * **Bad** (Table II): every node gets a *valid but incorrect* color, so
//!   workers preferentially execute non-local tasks. We rotate colors by
//!   one full NUMA domain, which maximizes wrongness (a node's bad color is
//!   never in its true domain when there is more than one domain).
//! * **Invalid** (Table III): every node gets a color no worker has, so
//!   every colored steal attempt fails — NabbitC degenerates to Nabbit plus
//!   the colored-steal overhead.

use nabbitc_color::Color;
use nabbitc_graph::TaskGraph;
use nabbitc_runtime::NumaTopology;

/// How node colors relate to data placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColoringMode {
    /// The user's correct majority coloring (leave the graph as built).
    Correct,
    /// Valid but wrong: rotate every color by one NUMA domain (Table II).
    Bad,
    /// A color no worker has: all colored steals fail (Table III).
    Invalid,
}

impl ColoringMode {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ColoringMode::Correct => "correct",
            ColoringMode::Bad => "bad",
            ColoringMode::Invalid => "invalid",
        }
    }
}

/// Maps a correct color to its variant under `mode` for a machine with
/// `workers` workers on `topology`.
pub fn map_color(mode: ColoringMode, c: Color, topology: &NumaTopology, workers: usize) -> Color {
    match mode {
        ColoringMode::Correct => c,
        ColoringMode::Bad => {
            if !c.is_valid() || workers == 0 {
                return c;
            }
            // Rotate by one domain's worth of cores: lands in the adjacent
            // domain (mod machine), so the preferred location is always
            // wrong on multi-domain machines.
            let shift = topology.cores_per_domain();
            Color::from((c.0 as usize + shift) % workers)
        }
        ColoringMode::Invalid => Color::INVALID,
    }
}

/// Applies `mode` to every node of `graph` in place.
///
/// Note this changes only the *scheduling hint*; the node's true data
/// placement (its access list) is untouched — exactly the paper's setup,
/// where the data stays put and only the hints lie.
pub fn apply_coloring(
    graph: &mut TaskGraph,
    mode: ColoringMode,
    topology: &NumaTopology,
    workers: usize,
) {
    if mode == ColoringMode::Correct {
        return;
    }
    graph.recolor(|_, c| map_color(mode, c, topology, workers));
}

#[cfg(test)]
mod tests {
    use super::*;
    use nabbitc_graph::generate;

    #[test]
    fn correct_is_identity() {
        let t = NumaTopology::new(2, 2);
        assert_eq!(map_color(ColoringMode::Correct, Color(3), &t, 4), Color(3));
    }

    #[test]
    fn bad_moves_to_other_domain() {
        let t = NumaTopology::new(2, 2); // domains {0,1},{2,3}
        for c in 0..4u16 {
            let bad = map_color(ColoringMode::Bad, Color(c), &t, 4);
            assert!(bad.is_valid());
            assert_ne!(
                t.domain_of_color(bad),
                t.domain_of_color(Color(c)),
                "bad color must land in a different domain"
            );
        }
    }

    #[test]
    fn bad_is_identity_on_single_domain() {
        // With one domain the rotation stays in the same (only) domain —
        // locality-neutral, as the paper's 1-10 core runs are.
        let t = NumaTopology::uma(4);
        let bad = map_color(ColoringMode::Bad, Color(1), &t, 4);
        assert_eq!(t.domain_of_color(bad), Some(0));
    }

    #[test]
    fn invalid_is_invalid() {
        let t = NumaTopology::new(2, 2);
        assert_eq!(
            map_color(ColoringMode::Invalid, Color(0), &t, 4),
            Color::INVALID
        );
    }

    #[test]
    fn apply_recolors_all_nodes() {
        let t = NumaTopology::new(2, 2);
        let mut g = generate::independent(16, 1, 4);
        apply_coloring(&mut g, ColoringMode::Invalid, &t, 4);
        assert!(g.nodes().all(|u| g.color(u) == Color::INVALID));
    }

    #[test]
    fn bad_preserves_validity() {
        let t = NumaTopology::paper_machine();
        let mut g = generate::independent(160, 1, 80);
        apply_coloring(&mut g, ColoringMode::Bad, &t, 80);
        assert!(g.nodes().all(|u| g.color(u).is_valid()));
        assert!(g.nodes().all(|u| (g.color(u).0 as usize) < 80));
    }
}
