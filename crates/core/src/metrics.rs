//! Remote-access accounting at node granularity (§V-B).
//!
//! The paper could not use hardware counters ("we were limited by OS
//! version and available hardware counters") and instead counts, per
//! thread:
//!
//! 1. executed nodes whose color matches no thread in the executing
//!    thread's NUMA domain, and
//! 2. predecessors of executed nodes whose color matches no thread in that
//!    domain (reading a predecessor's output is an access to its region).
//!
//! The sum over threads, divided by the total number of such checks, is the
//! "% remote accesses" of Figure 7. We reproduce the metric exactly.

use crossbeam_utils::CachePadded;
use nabbitc_color::Color;
use nabbitc_runtime::sync::{AtomicU64, Ordering::Relaxed};
use nabbitc_runtime::NumaTopology;

/// Per-worker live counters.
#[derive(Default)]
struct WorkerCounters {
    node_total: CachePadded<AtomicU64>,
    node_remote: CachePadded<AtomicU64>,
    pred_total: CachePadded<AtomicU64>,
    pred_remote: CachePadded<AtomicU64>,
}

/// Concurrent remote-access counters for a pool of workers.
pub struct RemoteCounters {
    topology: NumaTopology,
    workers: Vec<WorkerCounters>,
}

impl RemoteCounters {
    /// Creates counters for `workers` workers on `topology`.
    pub fn new(topology: NumaTopology, workers: usize) -> Self {
        RemoteCounters {
            topology,
            workers: (0..workers).map(|_| WorkerCounters::default()).collect(),
        }
    }

    /// Records the execution of a node colored `node_color` whose
    /// predecessors have colors `pred_colors`, by `worker`.
    pub fn record_node(
        &self,
        worker: usize,
        node_color: Color,
        pred_colors: impl IntoIterator<Item = Color>,
    ) {
        let c = &self.workers[worker];
        c.node_total.fetch_add(1, Relaxed);
        if self.topology.is_remote(worker, node_color) {
            c.node_remote.fetch_add(1, Relaxed);
        }
        let (mut pt, mut pr) = (0u64, 0u64);
        for pc in pred_colors {
            pt += 1;
            if self.topology.is_remote(worker, pc) {
                pr += 1;
            }
        }
        if pt > 0 {
            c.pred_total.fetch_add(pt, Relaxed);
            c.pred_remote.fetch_add(pr, Relaxed);
        }
    }

    /// Aggregates into a report.
    pub fn report(&self) -> RemoteAccessReport {
        let mut r = RemoteAccessReport::default();
        for w in &self.workers {
            r.node_total += w.node_total.load(Relaxed);
            r.node_remote += w.node_remote.load(Relaxed);
            r.pred_total += w.pred_total.load(Relaxed);
            r.pred_remote += w.pred_remote.load(Relaxed);
        }
        r
    }
}

/// Aggregated remote-access counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteAccessReport {
    /// Nodes executed.
    pub node_total: u64,
    /// Nodes executed outside their color's domain.
    pub node_remote: u64,
    /// Predecessor accesses checked.
    pub pred_total: u64,
    /// Predecessor accesses crossing domains.
    pub pred_remote: u64,
}

impl RemoteAccessReport {
    /// Total accesses considered.
    pub fn total(&self) -> u64 {
        self.node_total + self.pred_total
    }

    /// Remote accesses.
    pub fn remote(&self) -> u64 {
        self.node_remote + self.pred_remote
    }

    /// Percentage of accesses that were remote — the Figure 7 y-axis.
    pub fn pct_remote(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.remote() as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_and_remote_counted() {
        // 2 domains x 2 cores: workers 0,1 in domain 0 (colors {0,1}),
        // workers 2,3 in domain 1 (colors {2,3}).
        let t = NumaTopology::new(2, 2);
        let c = RemoteCounters::new(t, 4);
        // Worker 0 executes a node of color 1 (local), preds colored 2,3
        // (both remote).
        c.record_node(0, Color(1), [Color(2), Color(3)]);
        // Worker 3 executes a node of color 0 (remote), pred colored 2
        // (local).
        c.record_node(3, Color(0), [Color(2)]);
        let r = c.report();
        assert_eq!(r.node_total, 2);
        assert_eq!(r.node_remote, 1);
        assert_eq!(r.pred_total, 3);
        assert_eq!(r.pred_remote, 2);
        assert_eq!(r.total(), 5);
        assert_eq!(r.remote(), 3);
        assert!((r.pct_remote() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn uma_is_never_remote() {
        let c = RemoteCounters::new(NumaTopology::uma(4), 4);
        for w in 0..4 {
            c.record_node(w, Color(((w + 1) % 4) as u16), [Color(0)]);
        }
        assert_eq!(c.report().pct_remote(), 0.0);
    }

    #[test]
    fn invalid_color_counts_remote() {
        let c = RemoteCounters::new(NumaTopology::new(2, 2), 4);
        c.record_node(0, Color::INVALID, []);
        let r = c.report();
        assert_eq!(r.node_remote, 1);
        assert_eq!(r.pred_total, 0);
    }

    #[test]
    fn empty_report_is_zero_pct() {
        let r = RemoteAccessReport::default();
        assert_eq!(r.pct_remote(), 0.0);
    }
}
