//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the bench binaries link
//! against this minimal harness instead: same source-level API
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`), measurement by
//! plain wall-clock sampling — per benchmark it reports mean and min over
//! `sample_size` samples after a short warm-up. No statistics beyond that,
//! no HTML reports; output is one line per benchmark on stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name` with a parameter suffix, e.g. `batch/1024`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

impl From<&String> for BenchmarkId {
    fn from(name: &String) -> Self {
        BenchmarkId { name: name.clone() }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    /// Durations recorded by [`iter`](Self::iter), one per sample.
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly: a few warm-up calls, then `samples` timed
    /// calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut b);
        self.report(&id.name, &b.recorded);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            recorded: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.name, &b.recorded);
        self
    }

    /// Ends the group (separator line, mirrors criterion's API).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&mut self, name: &str, samples: &[Duration]) {
        let _ = &self.criterion; // group borrows the runner for its lifetime
        if samples.is_empty() {
            println!("{}/{name}: no samples recorded", self.group_name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{}/{name}: mean {mean:?}, min {min:?} ({} samples)",
            self.group_name,
            samples.len()
        );
    }
}

/// Benchmark runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = name.into();
        println!("== bench group: {group_name}");
        BenchmarkGroup {
            criterion: self,
            group_name,
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Prevents the optimizer from deleting a value (criterion re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 2 warm-up + 3 samples.
        assert_eq!(runs, 5);
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
