//! Workspace-local stand-in for the `crossbeam-utils` crate.
//!
//! The build container has no registry access, so the two primitives this
//! codebase uses are vendored here with identical semantics:
//!
//! * [`CachePadded`] — aligns a value to (a conservative multiple of) the
//!   cache-line size so adjacent hot atomics do not false-share;
//! * [`Backoff`] — exponential spin/yield back-off for lock-free retry
//!   loops.

use std::cell::Cell;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes.
///
/// 128 covers the common cases: 64-byte lines with adjacent-line prefetch
/// on x86, and 128-byte lines on several aarch64 parts — the same value
/// crossbeam uses on those targets.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential back-off for retry loops: spin briefly first, then yield the
/// thread once contention persists.
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// Fresh back-off state.
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    /// Resets to the initial (spinning) state.
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-spins for `2^step` hints without yielding.
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off, yielding the thread once the spin budget is exhausted.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step.get() {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step.get() <= YIELD_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Whether the caller should switch to blocking (parking) instead.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("step", &self.step.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(AtomicU64::new(7));
        assert_eq!(std::mem::align_of_val(&p), 128);
        assert_eq!(p.load(std::sync::atomic::Ordering::SeqCst), 7);
    }

    #[test]
    fn backoff_progresses_to_completion() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
