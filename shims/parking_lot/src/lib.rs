//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! small slice of `parking_lot`'s API this codebase uses — `Mutex`,
//! `RwLock`, and `Condvar` with non-poisoning guards — on top of
//! `std::sync`. Poisoned std locks are recovered transparently
//! (`parking_lot` has no poisoning), preserving the semantics callers rely
//! on: `lock()`/`read()`/`write()` return guards directly, and
//! `Condvar::wait` takes `&mut MutexGuard`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // underlying std guard; it is `Some` at all other times.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// RAII write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guarded mutex (parking_lot signature: the guard is reborrowed, not
    /// consumed).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
