//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this crate vendors the
//! slice of proptest's surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro over functions whose arguments are drawn with
//!   `name in strategy` clauses (strategies: integer ranges, inclusive
//!   ranges, and [`strategy::Just`]);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`ProptestConfig`] with the `cases` knob.
//!
//! Draws are seeded from the test's module path + name, so every run of a
//! given test explores the same cases — failures reproduce without a
//! persistence file. There is no shrinking: the failing inputs are printed
//! verbatim instead (the workspace's strategies are small tuples of ints,
//! where shrinking matters little).

pub use config::ProptestConfig;

/// Test-case failure carried out of a property body by the `prop_assert*`
/// macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed property with an explanatory message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration.
pub mod config {
    /// Subset of proptest's `Config` used by this workspace.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to draw per property.
        pub cases: u32,
        /// Unused compatibility knob (no shrinking in the shim).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Deterministic per-test RNG.
pub mod rng {
    use rand::{RngCore, SeedableRng, StdRng};

    /// RNG seeded from a test's fully qualified name.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds from `name` (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Value-drawing strategies.
pub mod strategy {
    use super::rng::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Something that can produce a value per test case.
    pub trait Strategy {
        /// The drawn value type.
        type Value: Debug + Clone;

        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// Always produces the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Debug + Clone>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// The glob import test files use.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` inside becomes a `#[test]` that draws
/// its arguments `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::rng::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $($arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Property-scope assertion: fails the current case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-scope equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Property-scope inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(a in 3usize..9, b in 0u64..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4, "b was {}", b);
            prop_assert_eq!(a, a);
            prop_assert_ne!(a + 1, a);
        }

        #[test]
        fn just_passes_through(v in Just(41u32)) {
            prop_assert_eq!(v, 41);
        }
    }

    #[test]
    // The nested `#[test]` generated by `proptest!` inside this fn cannot
    // be collected by the harness — intentional here, we call it directly.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
                #[test]
                fn always_fails(x in 0usize..10) {
                    prop_assert!(x > 100, "x too small: {}", x);
                }
            }
            always_fails();
        });
        let msg = *r
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("x too small"), "{msg}");
        assert!(msg.contains("inputs"), "{msg}");
    }
}
