//! Litmus tests for the loom shim's scheduler and TSO memory model.
//! These run in the normal tier-1 build (no special cfg): the shim is
//! always compiled, only the runtime's facade swap is cfg-gated.

use loom::model::{explore, Options};
use loom::sync::atomic::{fence, AtomicUsize, Ordering};
use loom::sync::Mutex;
use loom::thread;
use std::sync::Arc;

fn opts() -> Options {
    Options {
        preemption_bound: 3,
        max_iterations: 100_000,
        max_steps: 10_000,
    }
}

#[test]
fn counter_rmw_never_loses_updates() {
    let report = explore(opts(), || {
        let c = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.completed > 1,
        "should explore multiple interleavings"
    );
}

#[test]
fn store_buffering_is_observable_with_release_stores() {
    // The classic SB litmus: on TSO both threads may read 0 when the
    // stores are still sitting in the store buffers. The explorer must
    // find that outcome — it is exactly the reordering a weakened
    // Chase-Lev pop fence exposes.
    let saw_both_zero = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flag = saw_both_zero.clone();
    let report = explore(opts(), move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x1.store(1, Ordering::Release);
            y1.load(Ordering::Acquire)
        });
        y.store(1, Ordering::Release);
        let r0 = x.load(Ordering::Acquire);
        let r1 = t.join().unwrap();
        if r0 == 0 && r1 == 0 {
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        saw_both_zero.load(std::sync::atomic::Ordering::SeqCst),
        "TSO store buffering (r0 == r1 == 0) was never explored"
    );
}

#[test]
fn seqcst_fences_forbid_store_buffering() {
    // Same litmus with a SeqCst fence between each store and load: the
    // fence drains the buffer, so at least one thread must see 1.
    let report = explore(opts(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x1.store(1, Ordering::Release);
            fence(Ordering::SeqCst);
            y1.load(Ordering::Acquire)
        });
        y.store(1, Ordering::Release);
        fence(Ordering::SeqCst);
        let r0 = x.load(Ordering::Acquire);
        let r1 = t.join().unwrap();
        assert!(
            r0 == 1 || r1 == 1,
            "both sides read 0 despite SeqCst fences"
        );
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn seqcst_stores_forbid_store_buffering() {
    let report = explore(opts(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r0 = x.load(Ordering::SeqCst);
        let r1 = t.join().unwrap();
        assert!(r0 == 1 || r1 == 1);
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn explorer_detects_a_racy_check_then_act() {
    // Two threads do a non-atomic read-modify-write (load, then store
    // load+1). The lost-update interleaving must be found and reported
    // as a violation of the final assertion.
    let report = explore(opts(), || {
        let c = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let v = report.violation.expect("lost update was never explored");
    assert!(v.message.contains("lost update"), "{}", v.message);
    assert!(
        !v.trail.is_empty(),
        "violation must carry a reproducing trail"
    );
}

#[test]
fn mutex_provides_mutual_exclusion_and_ordering() {
    let report = explore(opts(), || {
        let m = Arc::new(Mutex::new((0u64, 0u64)));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    let mut g = m.lock();
                    // Non-atomic two-field update: torn only if exclusion
                    // is broken.
                    g.0 += 1;
                    thread::yield_now();
                    g.1 += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let g = m.lock();
        assert_eq!(
            *g,
            (2, 2),
            "mutex failed to serialize the critical sections"
        );
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn deadlock_is_reported_not_hung() {
    // Classic ABBA deadlock: must surface as a violation, not a hang.
    let report = explore(opts(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a1.lock();
            thread::yield_now();
            let _gb = b1.lock();
        });
        {
            let _gb = b.lock();
            thread::yield_now();
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
    let v = report.violation.expect("ABBA deadlock was never explored");
    assert!(v.message.contains("deadlock"), "{}", v.message);
}

#[test]
fn own_store_is_always_visible_to_self() {
    // Store-to-load forwarding: a thread always reads its own latest
    // buffered store, never the stale committed value.
    let report = explore(opts(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let x1 = x.clone();
        let t = thread::spawn(move || {
            x1.store(1, Ordering::Relaxed);
            assert_eq!(x1.load(Ordering::Relaxed), 1, "own store invisible");
            x1.store(2, Ordering::Relaxed);
            assert_eq!(x1.load(Ordering::Relaxed), 2);
        });
        t.join().unwrap();
        assert_eq!(x.load(Ordering::SeqCst), 2, "join must publish stores");
    });
    assert!(report.violation.is_none(), "{:?}", report.violation);
}

#[test]
fn check_replays_trails_deterministically() {
    // Run the same racy program twice; the reported trail must be
    // identical — replay determinism is what makes the DFS sound.
    let run = || {
        explore(opts(), || {
            let c = Arc::new(AtomicUsize::new(0));
            let c1 = c.clone();
            let t = thread::spawn(move || {
                let v = c1.load(Ordering::SeqCst);
                c1.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(c.load(Ordering::SeqCst), 2);
        })
    };
    let (a, b) = (run(), run());
    let va = a.violation.expect("race not found on first run");
    let vb = b.violation.expect("race not found on second run");
    assert_eq!(va.trail, vb.trail, "exploration is nondeterministic");
    assert_eq!(a.iterations, b.iterations);
}
