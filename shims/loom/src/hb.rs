//! Happens-before history recorded by the instrumented primitives, plus
//! the coherence (SC-per-location) check the explorer runs after every
//! completed execution.
//!
//! The model deliberately does *not* require full sequential consistency
//! — TSO legitimately exhibits store-buffering (each thread reads its own
//! store before the other's). What every hardware model does guarantee is
//! coherence: for each single location, all threads observe the same
//! total order of writes, and no load reads a value that was already
//! overwritten *from the reader's own viewpoint*. Violations here would
//! indicate a bug in the checker itself, so the check doubles as a
//! self-test of the memory model.

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Load of a committed (or own-buffered) value; `rf` is the event id
    /// of the store it read from (0 = the location's initial value).
    Load,
    /// Store committed directly to memory (SeqCst).
    Store,
    /// Store that entered the issuing thread's store buffer.
    BufferedStore,
    /// Atomic read-modify-write (always commits directly).
    Rmw,
    /// SeqCst fence that drained the issuing thread's buffer.
    Fence,
    LockAcquire,
    LockRelease,
}

/// One entry of the per-execution operation history.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number (the model's logical clock, 1-based).
    pub seq: u64,
    /// Virtual thread id that performed the operation.
    pub thread: usize,
    pub kind: EventKind,
    /// Memory location (or lock id for lock events).
    pub loc: u64,
    pub value: u64,
    /// For loads: event id (`seq`) of the store read from; 0 = initial.
    pub rf: Option<u64>,
}

/// Checks coherence of a completed execution: per location, each
/// thread's reads-from sequence must be a (stuttering) subsequence of
/// the commit order — a thread may read the same store twice and may
/// skip stores, but must never go *backwards* in the commit order.
///
/// `commit_orders` maps location → committed store event ids in commit
/// order (own-buffer-forwarded loads are exempt: they legitimately read
/// ahead of the commit order).
pub fn check_coherence(
    history: &[Event],
    commit_orders: &std::collections::HashMap<u64, Vec<u64>>,
) -> Result<(), String> {
    use std::collections::HashMap;
    // position of each committed store in its location's commit order;
    // the initial value (ev 0) sits at position 0, commits shift by 1.
    let mut pos: HashMap<(u64, u64), usize> = HashMap::new();
    for (&loc, evs) in commit_orders {
        pos.insert((loc, 0), 0);
        for (i, &ev) in evs.iter().enumerate() {
            pos.insert((loc, ev), i + 1);
        }
    }
    // Buffered-store event ids (reads of these are own-buffer forwards).
    let buffered: std::collections::HashSet<u64> = history
        .iter()
        .filter(|e| e.kind == EventKind::BufferedStore)
        .map(|e| e.seq)
        .collect();
    let committed: std::collections::HashSet<u64> = pos.keys().map(|&(_, ev)| ev).collect();

    let mut last_seen: HashMap<(usize, u64), usize> = HashMap::new();
    for e in history {
        if e.kind != EventKind::Load {
            continue;
        }
        let rf = e.rf.unwrap_or(0);
        if buffered.contains(&rf) && !committed.contains(&rf) {
            continue; // store-to-load forwarding from the own buffer
        }
        // rf == 0 is the location's initial value — position 0 in every
        // location's commit order, including never-written locations
        // (which have no commit_orders entry at all).
        let p = if rf == 0 {
            0
        } else {
            match pos.get(&(e.loc, rf)) {
                Some(&p) => p,
                None => {
                    return Err(format!(
                        "load (seq {}) on thread {} reads from unknown store {} at loc {}",
                        e.seq, e.thread, rf, e.loc
                    ));
                }
            }
        };
        let key = (e.thread, e.loc);
        if let Some(&prev) = last_seen.get(&key) {
            if p < prev {
                return Err(format!(
                    "coherence violation at loc {}: thread {} read commit #{} after commit #{} (load seq {})",
                    e.loc, e.thread, p, prev, e.seq
                ));
            }
        }
        last_seen.insert(key, p);
    }
    Ok(())
}
