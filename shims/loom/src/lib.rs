//! Workspace-local, registry-free stand-in for the `loom` model checker.
//!
//! Provides just enough of loom's surface for `nabbitc-check`:
//!
//! - [`mod@model`] / [`model::check`] / [`model::explore`] — a CHESS-style
//!   DFS schedule explorer with a preemption bound and iteration caps,
//!   driven by trail replay rather than state capture.
//! - [`thread::spawn`] / [`thread::JoinHandle`] / [`thread::yield_now`]
//!   — virtual threads multiplexed one-at-a-time over OS threads.
//! - [`sync::atomic`] — instrumented `AtomicUsize` / `AtomicIsize` /
//!   `AtomicU64` / `AtomicBool` / `AtomicPtr` / `fence` implementing a
//!   TSO (x86 store-buffer) weak-memory model: non-SeqCst stores buffer
//!   in the issuing thread and commit nondeterministically, so the
//!   store→load reordering that the Chase–Lev `pop` fence guards against
//!   is actually explored.
//! - [`sync::Mutex`] — a virtual lock (parking_lot-shaped, no
//!   poisoning) whose acquisition is a schedule point.
//! - [`hb`] — the per-execution operation history and the coherence
//!   check the explorer runs as a memory-model self-test.
//!
//! Differences from real loom, deliberate for this workspace: the
//! memory model is TSO rather than full C11 release/acquire (stronger
//! than the code under test assumes, but weak enough to exhibit the
//! store-buffering bugs the six WorkStealing invariants target), and
//! exploration is preemption-bounded DFS rather than DPOR.

pub mod hb;
pub mod model;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

/// Runs `f` under the explorer with env-tuned defaults, panicking on the
/// first violation (loom-compatible entry point).
pub fn model<F: FnMut()>(f: F) {
    model::check(f);
}

/// The model's logical clock: a monotonically increasing count of
/// visible operations in the current execution. Tests use it to
/// timestamp operation invocation/response for linearizability checks.
pub fn clock() -> u64 {
    rt::clock()
}
