//! Instrumented drop-in replacements for `std::sync::atomic` and a
//! virtual `Mutex`, routing every operation through the model runtime
//! (`crate::rt`). All values travel as `u64` internally; typed wrappers
//! convert at the boundary.
//!
//! Atomics must be created *inside* a `loom::model` run (they register a
//! memory location with the active execution). That matches the runtime
//! under test, which constructs its deques and injector at pool-build
//! time inside the checked closure.

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    macro_rules! int_atomic {
        ($name:ident, $ty:ty) => {
            #[derive(Debug)]
            pub struct $name {
                loc: u64,
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0 as $ty)
                }
            }

            impl $name {
                pub fn new(v: $ty) -> Self {
                    Self {
                        loc: rt::alloc_loc(v as u64),
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    rt::load(self.loc, order) as $ty
                }

                pub fn store(&self, val: $ty, order: Ordering) {
                    rt::store(self.loc, val as u64, order);
                }

                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    let (old, _) = rt::rmw(self.loc, order, |_| Some(val as u64));
                    old as $ty
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    let (old, applied) = rt::rmw(self.loc, success, |v| {
                        if v == current as u64 {
                            Some(new as u64)
                        } else {
                            None
                        }
                    });
                    if applied.is_some() {
                        Ok(old as $ty)
                    } else {
                        Err(old as $ty)
                    }
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    // No spurious failures in the model: they only widen
                    // the schedule space the explorer already covers.
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    let (old, _) = rt::rmw(self.loc, order, |v| Some(v.wrapping_add(val as u64)));
                    old as $ty
                }

                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    let (old, _) = rt::rmw(self.loc, order, |v| Some(v.wrapping_sub(val as u64)));
                    old as $ty
                }

                pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                    let (old, _) = rt::rmw(self.loc, order, |v| Some(v | val as u64));
                    old as $ty
                }

                pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                    let (old, _) = rt::rmw(self.loc, order, |v| Some(v & val as u64));
                    old as $ty
                }
            }
        };
    }

    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicIsize, isize);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicU32, u32);
    // Signed values round-trip through the u64 memory cell by two's
    // complement (`as` casts); orderings are what the model interprets.
    int_atomic!(AtomicI64, i64);

    #[derive(Debug)]
    pub struct AtomicBool {
        loc: u64,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self {
                loc: crate::rt::alloc_loc(v as u64),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            rt::load(self.loc, order) != 0
        }

        pub fn store(&self, val: bool, order: Ordering) {
            rt::store(self.loc, val as u64, order);
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            let (old, _) = rt::rmw(self.loc, order, |_| Some(val as u64));
            old != 0
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            let (old, applied) = rt::rmw(self.loc, success, |v| {
                if (v != 0) == current {
                    Some(new as u64)
                } else {
                    None
                }
            });
            if applied.is_some() {
                Ok(old != 0)
            } else {
                Err(old != 0)
            }
        }
    }

    pub struct AtomicPtr<T> {
        loc: u64,
        _marker: std::marker::PhantomData<*mut T>,
    }

    // The pointer value lives in the model's memory map; the wrapper
    // itself holds no data, so sharing it is as safe as the std type.
    unsafe impl<T> Send for AtomicPtr<T> {}
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("AtomicPtr").field("loc", &self.loc).finish()
        }
    }

    impl<T> AtomicPtr<T> {
        pub fn new(p: *mut T) -> Self {
            Self {
                loc: rt::alloc_loc(p as usize as u64),
                _marker: std::marker::PhantomData,
            }
        }

        pub fn load(&self, order: Ordering) -> *mut T {
            rt::load(self.loc, order) as usize as *mut T
        }

        pub fn store(&self, p: *mut T, order: Ordering) {
            rt::store(self.loc, p as usize as u64, order);
        }

        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            let (old, _) = rt::rmw(self.loc, order, |_| Some(p as usize as u64));
            old as usize as *mut T
        }

        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            _failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            let (old, applied) = rt::rmw(self.loc, success, |v| {
                if v == current as usize as u64 {
                    Some(new as usize as u64)
                } else {
                    None
                }
            });
            if applied.is_some() {
                Ok(old as usize as *mut T)
            } else {
                Err(old as usize as *mut T)
            }
        }
    }

    pub fn fence(order: Ordering) {
        rt::fence(order);
    }
}

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

/// Virtual mutex with `parking_lot`-shaped (non-poisoning) API, matching
/// the facade the runtime uses in normal builds. Acquisition is a
/// schedule decision point; contention blocks the virtual thread.
pub struct Mutex<T> {
    id: u64,
    data: UnsafeCell<T>,
}

// Exclusion is enforced by the model's lock table (one owner per lock id)
// plus the token discipline (one running vthread).
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            id: crate::rt::alloc_lock(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        crate::rt::lock_acquire(self.id);
        MutexGuard { mutex: self }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        crate::rt::lock_release(self.mutex.id);
    }
}

/// Virtual reader-writer lock with the `parking_lot` API shape.
///
/// Conservative model: readers exclude each other, not just writers —
/// every acquisition goes through the same lock table as [`Mutex`]. That
/// only *removes* schedules (reader/reader concurrency) relative to a
/// real RwLock, so any invariant proven under it still needs the
/// writer-exclusion edges, which are modeled exactly. The code routed
/// through the facade uses sharded RwLocks for a hash table where reads
/// are lookups; serializing them keeps the model finite without
/// weakening the exclusive-writer protocol under test.
pub struct RwLock<T> {
    inner: Mutex<T>,
}

// SAFETY: exclusion is delegated to the inner virtual Mutex (one owner
// per lock id under the model's token discipline).
unsafe impl<T: Send> Send for RwLock<T> {}
unsafe impl<T: Send> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }

    pub fn read(&self) -> MutexGuard<'_, T> {
        self.inner.lock()
    }

    pub fn write(&self) -> MutexGuard<'_, T> {
        self.inner.lock()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}
