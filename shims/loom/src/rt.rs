//! Execution runtime: the token-passing scheduler, the TSO memory model
//! (per-thread store buffers over a committed-value map), and the
//! decision trail the DFS explorer replays.
//!
//! Exactly one virtual thread runs at any moment — the *token holder*.
//! Every visible operation (a load of committed memory, an RMW, a SeqCst
//! store/fence, a lock operation) is a *decision point*: the running
//! thread consults the trail to decide which thread performs the next
//! visible operation, hands the token over if necessary, and only then
//! performs its own operation. Invisible operations (stores entering the
//! own store buffer, loads satisfied from the own buffer) commute with
//! every remote operation and execute without a decision — a sound
//! reduction that keeps the schedule tree small.
//!
//! Weak memory is modelled TSO-style: non-SeqCst stores enter the issuing
//! thread's FIFO store buffer and commit lazily. The *drain time* is the
//! second source of nondeterminism: a remote load of a buffered location
//! chooses between the committed value and draining a buffer prefix. This
//! is exactly the reordering that the Chase–Lev `pop` SeqCst fence
//! exists to prevent, so weakening that fence becomes an observable —
//! and findable — bug.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::hb::{Event, EventKind};

/// Sentinel unwind payload used to tear a virtual thread down when the
/// execution aborts (violation elsewhere or schedule pruned). Never
/// reaches user code.
pub(crate) struct AbortUnwind;

/// Why an execution stopped exploring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Abort {
    /// An invariant failed (a panic in user code or a deadlock).
    Violation(String),
    /// The execution exceeded `max_steps` — an unfair schedule (e.g. a
    /// spin loop starved forever); pruned, not a bug by itself.
    Pruned,
}

/// One recorded decision: which alternative was taken out of how many.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrailEntry {
    /// Index of the chosen alternative.
    pub chosen: usize,
    /// Number of enabled alternatives at this point.
    pub enabled: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockedOn {
    Lock(u64),
    Join(usize),
}

/// A buffered (not yet committed) store.
struct BufEntry {
    loc: u64,
    val: u64,
    /// History event id of the store (reads-from target).
    ev: u64,
}

struct VThread {
    state: TState,
    buffer: Vec<BufEntry>,
    /// Set by `yield_now`: deprioritises this thread at its next decision
    /// and makes the switch free (not a preemption).
    yielded: bool,
}

pub(crate) struct SchedState {
    threads: Vec<VThread>,
    active: usize,
    /// Committed memory: location → (value, event id of the writing store).
    mem: HashMap<u64, (u64, u64)>,
    /// Per-location commit order (event ids), for coherence checking.
    commit_order: HashMap<u64, Vec<u64>>,
    /// Lock table: lock id → owning thread.
    lock_owner: HashMap<u64, usize>,
    /// Monotonic id allocators, reset per execution (allocation order is
    /// deterministic, so ids are stable across replays).
    next_loc: u64,
    next_lock: u64,
    /// Decision trail: replayed prefix then newly recorded entries.
    pub(crate) decisions: Vec<TrailEntry>,
    replay: Vec<TrailEntry>,
    next_decision: usize,
    preemptions: usize,
    preemption_bound: usize,
    steps: u64,
    max_steps: u64,
    pub(crate) abort: Option<Abort>,
    pub(crate) history: Vec<Event>,
    clock: u64,
}

pub(crate) struct Rt {
    pub(crate) state: Mutex<SchedState>,
    cv: Condvar,
    /// OS-thread handles of spawned virtual threads, joined by the driver
    /// at the end of the execution.
    pub(crate) os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static TLS: RefCell<Option<Tls>> = const { RefCell::new(None) };
}

struct Tls {
    rt: Arc<Rt>,
    tid: usize,
    /// True while this thread unwinds due to an abort: all further
    /// instrumented operations execute in passthrough (no decisions, no
    /// further unwinds) so destructors can run.
    unwinding: bool,
}

/// Installs the calling OS thread as virtual thread `tid` of `rt`.
pub(crate) fn tls_install(rt: Arc<Rt>, tid: usize) {
    TLS.with(|t| {
        *t.borrow_mut() = Some(Tls {
            rt,
            tid,
            unwinding: false,
        })
    });
}

pub(crate) fn tls_clear() {
    TLS.with(|t| *t.borrow_mut() = None);
}

fn with_tls<R>(f: impl FnOnce(&mut Tls) -> R) -> R {
    TLS.with(|t| {
        let mut b = t.borrow_mut();
        let tls = b
            .as_mut()
            .expect("loom primitive used outside of loom::model / loom::check");
        f(tls)
    })
}

/// (rt, tid, unwinding) of the current virtual thread.
fn current() -> (Arc<Rt>, usize, bool) {
    with_tls(|t| (t.rt.clone(), t.tid, t.unwinding))
}

pub(crate) fn set_unwinding() {
    with_tls(|t| t.unwinding = true);
}

impl Rt {
    pub(crate) fn new(preemption_bound: usize, max_steps: u64, replay: Vec<TrailEntry>) -> Rt {
        Rt {
            state: Mutex::new(SchedState {
                threads: vec![VThread {
                    state: TState::Runnable,
                    buffer: Vec::new(),
                    yielded: false,
                }],
                active: 0,
                mem: HashMap::new(),
                commit_order: HashMap::new(),
                lock_owner: HashMap::new(),
                next_loc: 0,
                next_lock: 0,
                decisions: Vec::new(),
                replay,
                next_decision: 0,
                preemptions: 0,
                preemption_bound,
                steps: 0,
                max_steps,
                abort: None,
                history: Vec::new(),
                clock: 0,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        }
    }
}

impl SchedState {
    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.state == TState::Finished)
    }

    fn runnable_other_than(&self, me: usize) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| t != me && self.threads[t].state == TState::Runnable)
            .collect()
    }

    fn record_event(
        &mut self,
        thread: usize,
        kind: EventKind,
        loc: u64,
        value: u64,
        rf: Option<u64>,
    ) -> u64 {
        self.clock += 1;
        let seq = self.clock;
        self.history.push(Event {
            seq,
            thread,
            kind,
            loc,
            value,
            rf,
        });
        seq
    }

    /// Consults the trail: replayed prefix first, then DFS default
    /// (alternative 0). Sites with a single alternative are not recorded
    /// — replay indices only count genuine branch points.
    fn next_choice(&mut self, enabled: usize) -> usize {
        debug_assert!(enabled > 0);
        if enabled == 1 {
            return 0;
        }
        let chosen = if self.next_decision < self.replay.len() {
            let e = self.replay[self.next_decision];
            debug_assert_eq!(
                e.enabled, enabled,
                "nondeterministic replay: enabled-set size changed"
            );
            e.chosen.min(enabled - 1)
        } else {
            0
        };
        self.next_decision += 1;
        self.decisions.push(TrailEntry { chosen, enabled });
        chosen
    }

    /// Commits buffer entries `0..=upto` of `t` to memory.
    fn drain_prefix(&mut self, t: usize, upto: usize) {
        let drained: Vec<BufEntry> = self.threads[t].buffer.drain(0..=upto).collect();
        for e in drained {
            self.mem.insert(e.loc, (e.val, e.ev));
            self.commit_order.entry(e.loc).or_default().push(e.ev);
        }
    }

    fn drain_all(&mut self, t: usize) {
        if !self.threads[t].buffer.is_empty() {
            let upto = self.threads[t].buffer.len() - 1;
            self.drain_prefix(t, upto);
        }
    }

    /// Registers a fresh memory location holding `init`.
    fn alloc_loc(&mut self, init: u64) -> u64 {
        let loc = self.next_loc;
        self.next_loc += 1;
        // Registration is the location's initial "store" (event id 0 =
        // initial value; commit order starts with it implicitly).
        self.mem.insert(loc, (init, 0));
        loc
    }
}

/// Guard acquisition that tolerates a panicked sibling: the scheduler's
/// own invariants are per-operation, so a poisoned lock is still usable.
fn lock(rt: &Rt) -> MutexGuard<'_, SchedState> {
    rt.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// The decision at a visible operation of `me`: which thread performs the
/// next visible operation. Returns with `me` as the token holder again
/// (possibly after handing the token around), or unwinds on abort.
fn yield_point(rt: &Arc<Rt>, me: usize, voluntary: bool) {
    let mut st = lock(rt);
    if st.abort.is_some() {
        drop(st);
        abort_unwind();
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        st.abort = Some(Abort::Pruned);
        wake_all(rt, &mut st);
        drop(st);
        abort_unwind();
    }

    // Enabled alternatives: Run(me) plus Run(t) for other runnable t.
    // Ordering fixes the DFS default (index 0): continue the current
    // thread, unless it just yielded, in which case others go first.
    let others = st.runnable_other_than(me);
    let can_preempt = voluntary || st.preemptions < st.preemption_bound;
    let mut enabled: Vec<usize> = Vec::with_capacity(others.len() + 1);
    if st.threads[me].yielded {
        enabled.extend(others.iter().copied());
        enabled.push(me);
    } else {
        enabled.push(me);
        if can_preempt {
            enabled.extend(others.iter().copied());
        }
    }
    let idx = st.next_choice(enabled.len());
    let t = enabled[idx];
    st.threads[me].yielded = false;
    if t != me {
        if !voluntary {
            st.preemptions += 1;
        }
        st.active = t;
        rt.cv.notify_all();
        st = wait_for_token(rt, st, me);
    }
    drop(st);
}

/// Blocks `me` (lock wait / join wait) and hands the token to a runnable
/// thread. Returns once `me` has been unblocked *and* granted the token.
fn block_point(rt: &Arc<Rt>, me: usize, on: BlockedOn) {
    let mut st = lock(rt);
    if st.abort.is_some() {
        drop(st);
        abort_unwind();
    }
    st.threads[me].state = TState::Blocked(on);
    let others = st.runnable_other_than(me);
    if others.is_empty() {
        // Nothing can unblock us: genuine deadlock.
        st.threads[me].state = TState::Runnable;
        st.abort = Some(Abort::Violation(format!(
            "deadlock: thread {me} blocked on {on:?} with no runnable thread"
        )));
        wake_all(rt, &mut st);
        drop(st);
        abort_unwind();
    }
    let idx = st.next_choice(others.len());
    st.active = others[idx];
    rt.cv.notify_all();
    let st = wait_for_token(rt, st, me);
    drop(st);
}

fn wait_for_token<'a>(
    rt: &'a Arc<Rt>,
    mut st: MutexGuard<'a, SchedState>,
    me: usize,
) -> MutexGuard<'a, SchedState> {
    loop {
        if st.abort.is_some() && st.threads[me].state != TState::Finished {
            drop(st);
            abort_unwind();
        }
        if st.active == me && st.threads[me].state == TState::Runnable {
            return st;
        }
        st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// On abort every thread must get a chance to unwind; blocked threads are
/// force-runnable so the token can reach them.
fn wake_all(rt: &Rt, st: &mut SchedState) {
    for t in st.threads.iter_mut() {
        if matches!(t.state, TState::Blocked(_)) {
            t.state = TState::Runnable;
        }
    }
    rt.cv.notify_all();
}

fn abort_unwind() -> ! {
    set_unwinding();
    resume_unwind(Box::new(AbortUnwind))
}

/// Hands the token onward after `me` finished or while tearing down.
/// Caller must have marked `me` non-runnable already.
pub(crate) fn handoff(rt: &Arc<Rt>, st: &mut SchedState, me: usize) {
    let others = st.runnable_other_than(me);
    if let Some(&first) = others.first() {
        let idx = if st.abort.is_some() {
            0 // no exploration during teardown
        } else {
            st.next_choice(others.len())
        };
        st.active = others.get(idx).copied().unwrap_or(first);
    } else if !st.all_finished() && st.abort.is_none() {
        st.abort = Some(Abort::Violation(
            "deadlock: all unfinished threads are blocked".to_string(),
        ));
        wake_all(rt, st);
        return;
    }
    rt.cv.notify_all();
}

// ---------------------------------------------------------------------
// Virtual threads
// ---------------------------------------------------------------------

/// Spawns a virtual thread running `f`. Registration is not a decision
/// point: the child becomes schedulable at the parent's next visible op.
pub(crate) fn spawn_vthread<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
) -> crate::thread::JoinHandle<T> {
    let (rt, _me, unwinding) = current();
    assert!(!unwinding, "spawn during abort teardown");
    let tid = {
        let mut st = lock(&rt);
        st.threads.push(VThread {
            state: TState::Runnable,
            buffer: Vec::new(),
            yielded: false,
        });
        st.threads.len() - 1
    };
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let rt2 = rt.clone();
    let os = std::thread::Builder::new()
        .name(format!("loom-vthread-{tid}"))
        .spawn(move || {
            tls_install(rt2.clone(), tid);
            // Wait to be scheduled for the first time.
            {
                let st = lock(&rt2);
                let st = wait_for_token_or_abort(&rt2, st, tid);
                drop(st);
            }
            let r = catch_unwind(AssertUnwindSafe(f));
            // Thread exit: drain the store buffer (a real thread join has
            // release semantics), publish the result, wake joiners.
            let mut st = lock(&rt2);
            st.drain_all(tid);
            match r {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                }
                Err(p) => {
                    if p.downcast_ref::<AbortUnwind>().is_none() {
                        if st.abort.is_none() {
                            st.abort = Some(Abort::Violation(panic_message(&p)));
                        }
                        wake_all(&rt2, &mut st);
                        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(p));
                    }
                }
            }
            st.threads[tid].state = TState::Finished;
            for (i, t) in st.threads.iter_mut().enumerate() {
                if t.state == TState::Blocked(BlockedOn::Join(tid)) {
                    let _ = i;
                    t.state = TState::Runnable;
                }
            }
            handoff(&rt2, &mut st, tid);
            drop(st);
            tls_clear();
        })
        .expect("failed to spawn loom vthread");
    rt.os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(os);
    crate::thread::JoinHandle::new(tid, result)
}

/// First-schedule wait for a fresh vthread; unwinds if the execution
/// aborted before the thread ever ran.
fn wait_for_token_or_abort<'a>(
    rt: &'a Arc<Rt>,
    mut st: MutexGuard<'a, SchedState>,
    me: usize,
) -> MutexGuard<'a, SchedState> {
    loop {
        if st.abort.is_some() {
            drop(st);
            abort_unwind();
        }
        if st.active == me {
            return st;
        }
        st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

pub(crate) fn panic_message(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Blocks until virtual thread `tid` finishes.
pub(crate) fn join_vthread(tid: usize) {
    let (rt, me, unwinding) = current();
    if unwinding {
        return; // teardown: the driver joins the OS threads
    }
    loop {
        {
            let st = lock(&rt);
            if st.abort.is_some() {
                drop(st);
                abort_unwind();
            }
            if st.threads[tid].state == TState::Finished {
                return;
            }
        }
        block_point(&rt, me, BlockedOn::Join(tid));
    }
}

/// Voluntary reschedule: deprioritises the caller and lets any other
/// runnable thread take the token without spending a preemption.
pub(crate) fn yield_now() {
    let (rt, me, unwinding) = current();
    if unwinding {
        return;
    }
    {
        let mut st = lock(&rt);
        st.threads[me].yielded = true;
    }
    yield_point(&rt, me, true);
}

/// Current logical clock (monotonic within an execution); used by tests
/// to timestamp operation invocations/responses for linearizability
/// checking.
pub(crate) fn clock() -> u64 {
    let (rt, _, _) = current();
    let st = lock(&rt);
    st.clock
}

// ---------------------------------------------------------------------
// Memory operations (instrumented atomics call these)
// ---------------------------------------------------------------------

pub(crate) fn alloc_loc(init: u64) -> u64 {
    let (rt, _, _) = current();
    let mut st = lock(&rt);
    st.alloc_loc(init)
}

pub(crate) fn load(loc: u64, _order: Ordering) -> u64 {
    let (rt, me, unwinding) = current();
    if unwinding {
        let st = lock(&rt);
        return raw_read(&st, me, loc);
    }
    // Own-buffer hit: invisible (no decision), reads the newest own store.
    {
        let mut st = lock(&rt);
        if let Some(e) = st.threads[me].buffer.iter().rev().find(|e| e.loc == loc) {
            let (val, ev) = (e.val, e.ev);
            st.record_event(me, EventKind::Load, loc, val, Some(ev));
            return val;
        }
    }
    yield_point(&rt, me, false);
    let mut st = lock(&rt);
    // The drain decision: other threads' buffered stores to `loc` may or
    // may not have committed by now. Alternative 0 = no drain (the
    // stalest, most adversarial view); alternative k>0 = drain a prefix
    // of one buffer through its k-th store to `loc`.
    let mut drains: Vec<(usize, usize)> = Vec::new();
    for t in 0..st.threads.len() {
        if t == me {
            continue;
        }
        for (j, e) in st.threads[t].buffer.iter().enumerate() {
            if e.loc == loc {
                drains.push((t, j));
            }
        }
    }
    let idx = st.next_choice(1 + drains.len());
    if idx > 0 {
        let (t, j) = drains[idx - 1];
        st.drain_prefix(t, j);
    }
    let (val, ev) = *st.mem.get(&loc).expect("load of unregistered location");
    st.record_event(me, EventKind::Load, loc, val, Some(ev));
    val
}

fn raw_read(st: &SchedState, me: usize, loc: u64) -> u64 {
    if let Some(e) = st.threads[me].buffer.iter().rev().find(|e| e.loc == loc) {
        return e.val;
    }
    st.mem.get(&loc).map(|&(v, _)| v).unwrap_or(0)
}

pub(crate) fn store(loc: u64, val: u64, order: Ordering) {
    let (rt, me, unwinding) = current();
    if unwinding {
        let mut st = lock(&rt);
        st.threads[me].buffer.retain(|e| e.loc != loc);
        st.mem.insert(loc, (val, 0));
        return;
    }
    if order == Ordering::SeqCst {
        // Flushing store: drain the own buffer, then commit. Visible.
        yield_point(&rt, me, false);
        let mut st = lock(&rt);
        st.drain_all(me);
        let ev = st.record_event(me, EventKind::Store, loc, val, None);
        st.mem.insert(loc, (val, ev));
        st.commit_order.entry(loc).or_default().push(ev);
    } else {
        // Buffered store: invisible until drained.
        let mut st = lock(&rt);
        let ev = st.record_event(me, EventKind::BufferedStore, loc, val, None);
        st.threads[me].buffer.push(BufEntry { loc, val, ev });
    }
}

/// Read-modify-write: drains the own buffer (locked-op semantics), takes
/// the remote-drain decision like a load, applies `f` to the committed
/// value, commits the result. Returns (old, new, applied).
pub(crate) fn rmw(
    loc: u64,
    _order: Ordering,
    f: impl FnOnce(u64) -> Option<u64>,
) -> (u64, Option<u64>) {
    let (rt, me, unwinding) = current();
    if unwinding {
        let mut st = lock(&rt);
        let old = raw_read(&st, me, loc);
        if let Some(new) = f(old) {
            st.threads[me].buffer.retain(|e| e.loc != loc);
            st.mem.insert(loc, (new, 0));
            return (old, Some(new));
        }
        return (old, None);
    }
    yield_point(&rt, me, false);
    let mut st = lock(&rt);
    st.drain_all(me);
    let mut drains: Vec<(usize, usize)> = Vec::new();
    for t in 0..st.threads.len() {
        if t == me {
            continue;
        }
        for (j, e) in st.threads[t].buffer.iter().enumerate() {
            if e.loc == loc {
                drains.push((t, j));
            }
        }
    }
    let idx = st.next_choice(1 + drains.len());
    if idx > 0 {
        let (t, j) = drains[idx - 1];
        st.drain_prefix(t, j);
    }
    let (old, _) = *st.mem.get(&loc).expect("rmw of unregistered location");
    match f(old) {
        Some(new) => {
            let ev = st.record_event(me, EventKind::Rmw, loc, new, None);
            st.mem.insert(loc, (new, ev));
            st.commit_order.entry(loc).or_default().push(ev);
            (old, Some(new))
        }
        None => {
            st.record_event(me, EventKind::Rmw, loc, old, None);
            (old, None)
        }
    }
}

pub(crate) fn fence(order: Ordering) {
    let (rt, me, unwinding) = current();
    if unwinding {
        let mut st = lock(&rt);
        st.drain_all(me);
        return;
    }
    if order != Ordering::SeqCst {
        // On TSO, acquire/release fences compile to nothing: loads are
        // not reordered with loads, stores not with stores. Invisible.
        return;
    }
    // A SeqCst fence is only visible if it actually drains something.
    {
        let st = lock(&rt);
        if st.threads[me].buffer.is_empty() {
            return;
        }
    }
    yield_point(&rt, me, false);
    let mut st = lock(&rt);
    st.record_event(me, EventKind::Fence, 0, 0, None);
    st.drain_all(me);
}

// ---------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------

pub(crate) fn alloc_lock() -> u64 {
    let (rt, _, _) = current();
    let mut st = lock(&rt);
    let id = st.next_lock;
    st.next_lock += 1;
    id
}

pub(crate) fn lock_acquire(id: u64) {
    let (rt, me, unwinding) = current();
    if unwinding {
        let mut st = lock(&rt);
        st.lock_owner.insert(id, me);
        return;
    }
    loop {
        yield_point(&rt, me, false);
        let mut st = lock(&rt);
        if let std::collections::hash_map::Entry::Vacant(e) = st.lock_owner.entry(id) {
            e.insert(me);
            // A real lock acquisition is a locked RMW: drain own buffer.
            st.drain_all(me);
            st.record_event(me, EventKind::LockAcquire, id, 0, None);
            return;
        }
        drop(st);
        block_point(&rt, me, BlockedOn::Lock(id));
    }
}

pub(crate) fn lock_release(id: u64) {
    let (rt, me, unwinding) = current();
    let mut st = lock(&rt);
    let owner = st.lock_owner.remove(&id);
    debug_assert_eq!(owner, Some(me), "unlock by non-owner");
    st.drain_all(me);
    if !unwinding {
        st.record_event(me, EventKind::LockRelease, id, 0, None);
    }
    // Wake lock waiters: they become runnable and re-race on schedule.
    for t in st.threads.iter_mut() {
        if t.state == TState::Blocked(BlockedOn::Lock(id)) {
            t.state = TState::Runnable;
        }
    }
    rt.cv.notify_all();
}

// ---------------------------------------------------------------------
// Driver entry points (used by crate::model)
// ---------------------------------------------------------------------

/// Everything the explorer needs from one finished execution.
pub(crate) struct ExecOutcome {
    pub abort: Option<Abort>,
    pub decisions: Vec<TrailEntry>,
    pub history: Vec<Event>,
    pub commit_orders: HashMap<u64, Vec<u64>>,
}

/// Runs one execution of `f` as virtual thread 0 on the calling thread.
pub(crate) fn run_once(
    preemption_bound: usize,
    max_steps: u64,
    replay: Vec<TrailEntry>,
    f: &mut dyn FnMut(),
) -> ExecOutcome {
    let rt = Arc::new(Rt::new(preemption_bound, max_steps, replay));
    tls_install(rt.clone(), 0);
    let r = catch_unwind(AssertUnwindSafe(&mut *f));
    // Finish thread 0 and wait for the rest of the execution to wind down.
    {
        let mut st = lock(&rt);
        if let Err(p) = r {
            if p.downcast_ref::<AbortUnwind>().is_none() && st.abort.is_none() {
                st.abort = Some(Abort::Violation(panic_message(&p)));
                wake_all(&rt, &mut st);
            }
        }
        st.drain_all(0);
        st.threads[0].state = TState::Finished;
        for t in st.threads.iter_mut() {
            if t.state == TState::Blocked(BlockedOn::Join(0)) {
                t.state = TState::Runnable;
            }
        }
        handoff(&rt, &mut st, 0);
        while !st.all_finished() {
            st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    // All virtual threads have exited their bodies; reap the OS threads.
    let handles: Vec<_> = rt
        .os_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
        .collect();
    for h in handles {
        let _ = h.join();
    }
    tls_clear();
    let st = lock(&rt);
    ExecOutcome {
        abort: st.abort.clone(),
        decisions: st.decisions.clone(),
        history: st.history.clone(),
        commit_orders: st.commit_order.clone(),
    }
}
