//! Virtual threads: loom-compatible `spawn` / `JoinHandle` / `yield_now`
//! backed by real OS threads under the model's one-token scheduler.

use std::sync::{Arc, Mutex};

pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(tid: usize, result: Arc<Mutex<Option<std::thread::Result<T>>>>) -> Self {
        Self { tid, result }
    }

    /// Blocks the calling virtual thread until the target finishes.
    pub fn join(self) -> std::thread::Result<T> {
        crate::rt::join_vthread(self.tid);
        match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(r) => r,
            None => Err(Box::new("vthread result unavailable (aborted execution)")
                as Box<dyn std::any::Any + Send>),
        }
    }
}

/// Spawns a virtual thread participating in the current model execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    crate::rt::spawn_vthread(f)
}

/// Voluntary reschedule point (no preemption charged).
pub fn yield_now() {
    crate::rt::yield_now();
}
