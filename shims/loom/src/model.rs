//! The schedule explorer: depth-first enumeration of the decision tree
//! recorded by `crate::rt`, CHESS-style (preemption-bounded, with replay
//! from a decision trail instead of state snapshots).
//!
//! Each execution runs the checked closure to completion (or abort) and
//! records a trail of branch points — `(chosen, enabled)` pairs.
//! Backtracking rewinds to the deepest entry with an untried
//! alternative, bumps it, and replays. Identical prefixes re-execute
//! deterministically because the closure itself must be deterministic
//! modulo scheduling (no wall clocks, no OS randomness) — which holds
//! for the runtime code under test.

use crate::rt::{self, Abort, TrailEntry};

/// Exploration limits. `from_env` layers the `NABBITC_CHECK_DEPTH` /
/// `NABBITC_CHECK_ITERS` knobs over the CI-friendly defaults.
#[derive(Clone, Debug)]
pub struct Options {
    /// Max involuntary context switches per execution (CHESS bound).
    pub preemption_bound: usize,
    /// Max executions before the explorer gives up (coverage cap).
    pub max_iterations: u64,
    /// Max scheduler decisions per execution; beyond this the schedule
    /// counts as unfair and is pruned, not failed.
    pub max_steps: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_iterations: 200_000,
            max_steps: 20_000,
        }
    }
}

impl Options {
    pub fn from_env() -> Self {
        let mut o = Self::default();
        if let Some(d) = env_u64("NABBITC_CHECK_DEPTH") {
            o.preemption_bound = d as usize;
        }
        if let Some(i) = env_u64("NABBITC_CHECK_ITERS") {
            o.max_iterations = i;
        }
        o
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// A failing execution: the message plus the decision trail that
/// reproduces it (replayable by construction).
#[derive(Clone, Debug)]
pub struct Violation {
    pub message: String,
    pub trail: Vec<TrailEntry>,
}

/// Exploration summary. `completed` counts executions that ran to the
/// end; `pruned` counts schedules cut off by `max_steps`.
#[derive(Clone, Debug, Default)]
pub struct Report {
    pub iterations: u64,
    pub completed: u64,
    pub pruned: u64,
    /// True if the explorer stopped because `max_iterations` ran out
    /// (coverage is partial, not exhaustive-within-bound).
    pub capped: bool,
    pub violation: Option<Violation>,
}

/// Explores `f` under `opts`, returning the full report. Stops at the
/// first violation.
pub fn explore<F: FnMut()>(opts: Options, mut f: F) -> Report {
    let mut report = Report::default();
    let mut replay: Vec<TrailEntry> = Vec::new();
    loop {
        if report.iterations >= opts.max_iterations {
            report.capped = true;
            return report;
        }
        report.iterations += 1;
        let out = rt::run_once(
            opts.preemption_bound,
            opts.max_steps,
            replay.clone(),
            &mut f,
        );
        match out.abort {
            None => {
                report.completed += 1;
                // Memory-model self-check: every completed execution must
                // be coherent, else the checker itself is wrong.
                if let Err(msg) = crate::hb::check_coherence(&out.history, &out.commit_orders) {
                    report.violation = Some(Violation {
                        message: format!("internal memory-model error: {msg}"),
                        trail: out.decisions,
                    });
                    return report;
                }
            }
            Some(Abort::Pruned) => report.pruned += 1,
            Some(Abort::Violation(message)) => {
                report.violation = Some(Violation {
                    message,
                    trail: out.decisions,
                });
                return report;
            }
        }
        // Backtrack: deepest decision with an untried alternative.
        match next_trail(&out.decisions) {
            Some(next) => replay = next,
            None => return report,
        }
    }
}

fn next_trail(decisions: &[TrailEntry]) -> Option<Vec<TrailEntry>> {
    for i in (0..decisions.len()).rev() {
        let e = decisions[i];
        if e.chosen + 1 < e.enabled {
            let mut next = decisions[..i].to_vec();
            next.push(TrailEntry {
                chosen: e.chosen + 1,
                enabled: e.enabled,
            });
            return Some(next);
        }
    }
    None
}

/// Explores `f` with env-tuned defaults and panics on any violation,
/// printing the reproducing trail. This is the `loom::model`-shaped
/// entry point the checker tests use.
pub fn check<F: FnMut()>(f: F) -> Report {
    let report = explore(Options::from_env(), f);
    if let Some(v) = &report.violation {
        panic!(
            "model check failed after {} executions ({} completed, {} pruned):\n  {}\n  trail: {:?}",
            report.iterations,
            report.completed,
            report.pruned,
            v.message,
            v.trail.iter().map(|e| e.chosen).collect::<Vec<_>>()
        );
    }
    assert!(
        report.completed > 0,
        "model check explored no complete execution ({} pruned) — raise max_steps",
        report.pruned
    );
    report
}
