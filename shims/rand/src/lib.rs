//! Workspace-local stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the subset of `rand`'s
//! 0.8 API this workspace uses is vendored here: `rngs::StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and `Rng::{gen, gen_range,
//! gen_bool}` over integer ranges and `f64`/`bool` draws.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! strong for simulation work and fully deterministic. Streams differ from
//! upstream `rand` (nothing in this workspace asserts upstream values; all
//! determinism tests compare the generator against itself).

use std::ops::{Range, RangeInclusive};

/// Deterministic pseudo-random generators.
pub mod rngs {
    /// The workspace's standard seeded RNG (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    #[inline]
    fn next_raw(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Core entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s.iter().all(|&w| w == 0) {
            // xoshiro must not start at the all-zero state.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types drawable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Integer types uniformly samplable over a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `hi >= lo`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                // u128 arithmetic: even a full-width 64-bit range gives a
                // nonzero span of 2^64 (the implemented types are <= 64
                // bits), so no zero-span case exists.
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing draws, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "draws should spread across [0,1)");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
