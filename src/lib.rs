//! # NabbitC — locality-aware dynamic task graph scheduling
//!
//! A Rust reproduction of *Locality-Aware Dynamic Task Graph Scheduling*
//! (Maglalang, Krishnamoorthy, Agrawal — ICPP 2017): the **NabbitC**
//! scheduler, which extends the Nabbit dynamic task-graph executor with
//! user-supplied locality *colors* so that NUMA workers preferentially
//! execute tasks whose data is local — without giving up the provable load
//! balance of randomized work stealing.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`color`] | `nabbitc-color` | [`Color`](color::Color), constant-time [`ColorSet`](color::ColorSet) |
//! | [`cost`] | `nabbitc-cost` | the [`CostModel`](cost::CostModel) every layer prices schedules with — simulator, estimators, autocolor objectives |
//! | [`graph`] | `nabbitc-graph` | task graphs, generators, work/span + edge-cut analysis, trace validation |
//! | [`autocolor`] | `nabbitc-autocolor` | automatic coloring: [`ColorAssigner`](autocolor::ColorAssigner) strategies from round-robin to recursive bisection, the [`AutoSelect`](autocolor::AutoSelect) meta-assigner that picks the best strategy per graph, plus online coloring for dynamic specs |
//! | [`runtime`] | `nabbitc-runtime` | colored Chase–Lev deques, the worker pool, steal policies |
//! | [`core`] | `nabbitc-core` | Nabbit/NabbitC executors, morphing-continuation spawning, §V-B metrics |
//! | [`parfor`] | `nabbitc-parfor` | OpenMP-like static/guided/dynamic baselines |
//! | [`numasim`] | `nabbitc-numasim` | deterministic 8×10-core NUMA simulator (regenerates the paper's figures) |
//! | [`workloads`] | `nabbitc-workloads` | the Table I benchmark suite, runnable + simulated, with uncolored variants for autocolor |
//!
//! ## Quickstart
//!
//! ```
//! use nabbitc::prelude::*;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // A diamond task graph, colored across two workers.
//! let mut b = GraphBuilder::new();
//! let src = b.add_simple_node(10, Color(0), 64);
//! let left = b.add_simple_node(10, Color(0), 64);
//! let right = b.add_simple_node(10, Color(1), 64);
//! let sink = b.add_simple_node(10, Color(1), 64);
//! b.add_edge(src, left);
//! b.add_edge(src, right);
//! b.add_edge(left, sink);
//! b.add_edge(right, sink);
//! let graph = Arc::new(b.build().unwrap());
//!
//! // Execute under the NabbitC policy (colored steals on).
//! let pool = Arc::new(Pool::new(PoolConfig::nabbitc(2)));
//! let exec = StaticExecutor::new(pool);
//! let done = Arc::new(AtomicU64::new(0));
//! let d = done.clone();
//! exec.execute(&graph, Arc::new(move |_node, _worker| {
//!     d.fetch_add(1, Ordering::SeqCst);
//! }));
//! assert_eq!(done.load(Ordering::SeqCst), 4);
//! ```
//!
//! ### No colors? Infer them
//!
//! When nobody hand-colored the graph, let the autocolor subsystem do it.
//! The **default path** is `execute_auto`: the
//! [`AutoSelect`](autocolor::AutoSelect) meta-assigner runs its whole
//! strategy portfolio, scores every candidate assignment with the
//! makespan estimator for this pool's worker count, applies the winner
//! (edge-cut bisection on stencils, level-aware partitioning on
//! wavefronts — no single objective wins both), and re-homes the data
//! accordingly. The returned report's
//! [`selection`](core::RunReport::selection) field is the
//! [`SelectionReport`](autocolor::SelectionReport) saying which candidate
//! won, what each one scored, and what the selection cost.
//!
//! ```
//! use nabbitc::prelude::*;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // An uncolored 100-node stencil (every node Color(0)).
//! let graph = Arc::new(nabbitc::graph::generate::iterated_stencil(10, 10, 1, 1));
//!
//! let pool = Arc::new(Pool::new(PoolConfig::nabbitc(2)));
//! let exec = StaticExecutor::new(pool);
//! let done = Arc::new(AtomicU64::new(0));
//! let d = done.clone();
//! let (report, recolored) = exec.execute_auto(
//!     &graph,
//!     Arc::new(move |_node, _worker| {
//!         d.fetch_add(1, Ordering::SeqCst);
//!     }),
//! );
//! assert_eq!(done.load(Ordering::SeqCst), 100);
//! // Both workers received a share of the inferred coloring.
//! assert!(recolored.nodes().any(|u| recolored.color(u) != recolored.color(0)));
//! let selection = report.selection.as_ref().unwrap();
//! println!("selected strategy: {}", selection.chosen_name());
//! ```
//!
//! To pin one strategy instead (as the benches do when sweeping), pass it
//! to `execute_autocolored` explicitly — e.g.
//! [`RecursiveBisection`](autocolor::RecursiveBisection) for pure
//! edge-cut minimization.
//!
//! ### The cost model
//!
//! Everything that *prices* a schedule — the NUMA simulator, the
//! makespan estimators in [`graph::analysis`], and the `AutoSelect`
//! scoring above — consumes the same [`CostModel`](cost::CostModel) from
//! `nabbitc-cost`. A node costs `node_overhead + work·work_tick +
//! bytes·(local_byte or remote_byte)` ticks; a cross-color dependence
//! edge costs its **byte traffic**
//! ([`TaskGraph::edge_traffic`](graph::TaskGraph::edge_traffic), the
//! producer's output split among its consumers) at the remote-vs-local
//! byte premium ([`CostModel::remote_excess`](cost::CostModel::remote_excess))
//! on the consumer's execution, plus one steal hand-off
//! ([`CostModel::cross_edge_latency`](cost::CostModel::cross_edge_latency))
//! on its ready time. Because the bandwidth term scales with the bytes an
//! edge actually moves, `AutoSelect` needs no hand-calibrated cross
//! penalty: memory-bound stencils (where remote bandwidth dominates) and
//! latency-bound wavefronts (where pipeline serialization dominates) rank
//! correctly under the same model.
//!
//! Whether a cut edge's bytes are *remote* is a property of the machine:
//! under a [`Topology`](cost::Topology) (the paper's 8-NUMA-domain ×
//! 10-worker Xeon: `NumaTopology::paper_machine().truncated(p).cost_view()`),
//! two colors in the same domain exchange bytes at **local** bandwidth,
//! and only cross-domain edges pay the premium. The domain-aware
//! estimator variants (`estimate_makespan_colored_on` and friends) price
//! exactly what the simulator charges through `domain_of_color`;
//! `AutoSelect::with_topology` scores with them and domain-packs the
//! winner (`autocolor::pack_domains`). Without a topology, every worker
//! is its own domain — the conservative default.
//!
//! ```
//! use nabbitc::cost::{CostModel, Topology};
//!
//! // The default machine: remote DRAM 3x local.
//! let cost = CostModel::default();
//! assert_eq!(cost.remote_ratio(), 3.0);
//! // Ablation knob — validated: NaN/negative/zero terms panic.
//! let heavy = CostModel::default().with_remote_ratio(8.0);
//! assert_eq!(heavy.remote_excess(100), 700); // (8 - 1) x 100 bytes
//! // Domain awareness: workers 0 and 9 share the paper machine's first
//! // domain, so a cut edge between them moves bytes at local bandwidth.
//! let topo = Topology::paper_machine();
//! assert_eq!(heavy.cut_excess(&topo, 0, 9, 100), 0);
//! assert_eq!(heavy.cut_excess(&topo, 9, 10, 100), 700);
//! ```
//!
//! Consumers take the model explicitly: `estimate_makespan_colored(&g,
//! &colors, workers, &cost)` (or `estimate_makespan_colored_on(...,
//! &topo)`), `WsConfig { cost, .. }` for the simulator,
//! `AutoSelect::default().with_cost_model(cost).with_topology(topo)` (or
//! `ExecOptions { cost, topology, .. }` through `execute_auto`).
//!
//! ## Observability
//!
//! Every executor run returns one [`RunReport`](core::RunReport):
//! execution wall-clock (`elapsed`), coloring wall-clock
//! (`coloring_elapsed`, autocolored paths only), the §V-B remote-access
//! percentages (`remote`), per-worker scheduler counters (`stats`), the
//! per-node execution trace (`trace`, behind
//! [`ExecOptions::record_trace`](core::ExecOptions)), the runtime event
//! trace (`runtime_trace`, see below), and the autocolor
//! [`SelectionReport`](autocolor::SelectionReport) (`selection`,
//! `execute_auto` only).
//!
//! **Event tracing.** Build the pool with
//! [`TraceConfig`](runtime::TraceConfig) enabled and every worker records
//! timestamped spawn / exec-begin / exec-end / steal-attempt /
//! steal-success / idle-enter / idle-exit events into a fixed-capacity
//! lock-free ring (drop-oldest, no allocation on the hot path; with
//! tracing off — the default — the pool allocates no rings and each
//! record site is one branch). Snapshots
//! ([`Pool::trace_snapshot`](runtime::Pool::trace_snapshot)) aggregate
//! into per-worker summaries
//! ([`RuntimeTrace::summaries`](runtime::RuntimeTrace::summaries)) and
//! export as Chrome `trace_event` JSON
//! ([`RuntimeTrace::chrome_trace_json`](runtime::RuntimeTrace::chrome_trace_json))
//! loadable in `chrome://tracing` or Perfetto.
//!
//! ```
//! use nabbitc::prelude::*;
//! use std::sync::Arc;
//!
//! let pool = Arc::new(Pool::new(
//!     PoolConfig::nabbitc(2).with_trace(TraceConfig::enabled()),
//! ));
//! let exec = StaticExecutor::new(pool);
//! let graph = Arc::new(nabbitc::graph::generate::wavefront(8, 8, 1, 2));
//! let report = exec.execute(&graph, Arc::new(|_node, _worker| {}));
//! let trace = report.runtime_trace.unwrap();
//! // Execs count scheduler *tasks*, not graph nodes: the executor runs
//! // chains of single-ready successors inside one task, so a 64-node
//! // wavefront is anywhere from 1 task (pure chaining) to 65 (root +
//! // one task per node), depending on how stealing went.
//! let execs: u64 = trace.summaries().iter().map(|s| s.execs).sum();
//! assert!((1..=65).contains(&execs));
//! assert!(trace.total_recorded() >= 2 * execs); // begin + end per task
//! let chrome_json = trace.chrome_trace_json(); // chrome://tracing-loadable
//! assert!(chrome_json.starts_with("{\"traceEvents\":["));
//! ```
//!
//! **Wall-clock benchmarks.** `cargo run --release -p nabbitc-bench --bin
//! wallclock` sweeps the real executor (serial / static / auto /
//! on-demand × P) over the workload registry and writes one versioned
//! `BENCH_<workload>.json` per workload at the repo root, recording
//! measured speedup next to the NUMA simulator's predicted speedup (the
//! estimator-drift trajectory). `wallclock --validate` re-parses the
//! emitted files and checks the schema; see the README's Observability
//! section for the key-by-key schema.

pub use nabbitc_autocolor as autocolor;
pub use nabbitc_color as color;
pub use nabbitc_core as core;
pub use nabbitc_cost as cost;
pub use nabbitc_graph as graph;
pub use nabbitc_numasim as numasim;
pub use nabbitc_parfor as parfor;
pub use nabbitc_runtime as runtime;
pub use nabbitc_workloads as workloads;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use nabbitc_autocolor::{
        autocolor, AutoSelect, BfsLocality, BlockContiguous, ColorAssigner, CpLevelAware,
        DynamicAffinity, RecursiveBisection, RoundRobin, SelectionReport,
    };
    pub use nabbitc_color::{Color, ColorSet};
    pub use nabbitc_core::{
        AutoColoredSpec, ColoringMode, DynamicExecutor, ExecOptions, RunReport, StaticExecutor,
        TaskSpec,
    };
    pub use nabbitc_cost::Topology;
    pub use nabbitc_graph::{GraphBuilder, NodeAccess, NodeId, TaskGraph};
    pub use nabbitc_numasim::{
        simulate_omp, simulate_ws, CostModel, OmpSchedule, SimResult, WsConfig,
    };
    pub use nabbitc_parfor::{Schedule, Team};
    pub use nabbitc_runtime::{
        NumaTopology, Pool, PoolConfig, RuntimeTrace, StealPolicy, TraceConfig,
    };
}
