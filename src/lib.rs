//! # NabbitC — locality-aware dynamic task graph scheduling
//!
//! A Rust reproduction of *Locality-Aware Dynamic Task Graph Scheduling*
//! (Maglalang, Krishnamoorthy, Agrawal — ICPP 2017): the **NabbitC**
//! scheduler, which extends the Nabbit dynamic task-graph executor with
//! user-supplied locality *colors* so that NUMA workers preferentially
//! execute tasks whose data is local — without giving up the provable load
//! balance of randomized work stealing.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`color`] | `nabbitc-color` | [`Color`](color::Color), constant-time [`ColorSet`](color::ColorSet) |
//! | [`graph`] | `nabbitc-graph` | task graphs, generators, work/span + edge-cut analysis, trace validation |
//! | [`autocolor`] | `nabbitc-autocolor` | automatic coloring: [`ColorAssigner`](autocolor::ColorAssigner) strategies from round-robin to recursive bisection, plus online coloring for dynamic specs |
//! | [`runtime`] | `nabbitc-runtime` | colored Chase–Lev deques, the worker pool, steal policies |
//! | [`core`] | `nabbitc-core` | Nabbit/NabbitC executors, morphing-continuation spawning, §V-B metrics |
//! | [`parfor`] | `nabbitc-parfor` | OpenMP-like static/guided/dynamic baselines |
//! | [`numasim`] | `nabbitc-numasim` | deterministic 8×10-core NUMA simulator (regenerates the paper's figures) |
//! | [`workloads`] | `nabbitc-workloads` | the Table I benchmark suite, runnable + simulated, with uncolored variants for autocolor |
//!
//! ## Quickstart
//!
//! ```
//! use nabbitc::prelude::*;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // A diamond task graph, colored across two workers.
//! let mut b = GraphBuilder::new();
//! let src = b.add_simple_node(10, Color(0), 64);
//! let left = b.add_simple_node(10, Color(0), 64);
//! let right = b.add_simple_node(10, Color(1), 64);
//! let sink = b.add_simple_node(10, Color(1), 64);
//! b.add_edge(src, left);
//! b.add_edge(src, right);
//! b.add_edge(left, sink);
//! b.add_edge(right, sink);
//! let graph = Arc::new(b.build().unwrap());
//!
//! // Execute under the NabbitC policy (colored steals on).
//! let pool = Arc::new(Pool::new(PoolConfig::nabbitc(2)));
//! let exec = StaticExecutor::new(pool);
//! let done = Arc::new(AtomicU64::new(0));
//! let d = done.clone();
//! exec.execute(&graph, Arc::new(move |_node, _worker| {
//!     d.fetch_add(1, Ordering::SeqCst);
//! }));
//! assert_eq!(done.load(Ordering::SeqCst), 4);
//! ```
//!
//! ### No colors? Infer them
//!
//! When nobody hand-colored the graph, let the autocolor subsystem do it:
//! `execute_autocolored` partitions the graph for the pool's worker count
//! (here with [`RecursiveBisection`](autocolor::RecursiveBisection), the
//! strongest static strategy) and re-homes the data accordingly.
//!
//! ```
//! use nabbitc::autocolor::RecursiveBisection;
//! use nabbitc::prelude::*;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // An uncolored 100-node stencil (every node Color(0)).
//! let graph = Arc::new(nabbitc::graph::generate::iterated_stencil(10, 10, 1, 1));
//!
//! let pool = Arc::new(Pool::new(PoolConfig::nabbitc(2)));
//! let exec = StaticExecutor::new(pool);
//! let done = Arc::new(AtomicU64::new(0));
//! let d = done.clone();
//! let (_report, recolored) = exec.execute_autocolored(
//!     &graph,
//!     &RecursiveBisection::default(),
//!     Arc::new(move |_node, _worker| {
//!         d.fetch_add(1, Ordering::SeqCst);
//!     }),
//! );
//! assert_eq!(done.load(Ordering::SeqCst), 100);
//! // Both workers received a share of the inferred coloring.
//! assert!(recolored.nodes().any(|u| recolored.color(u) != recolored.color(0)));
//! ```

pub use nabbitc_autocolor as autocolor;
pub use nabbitc_color as color;
pub use nabbitc_core as core;
pub use nabbitc_graph as graph;
pub use nabbitc_numasim as numasim;
pub use nabbitc_parfor as parfor;
pub use nabbitc_runtime as runtime;
pub use nabbitc_workloads as workloads;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use nabbitc_autocolor::{
        autocolor, BfsLocality, BlockContiguous, ColorAssigner, CpLevelAware, DynamicAffinity,
        RecursiveBisection, RoundRobin,
    };
    pub use nabbitc_color::{Color, ColorSet};
    pub use nabbitc_core::{
        AutoColoredSpec, ColoringMode, DynamicExecutor, ExecOptions, StaticExecutor, TaskSpec,
    };
    pub use nabbitc_graph::{GraphBuilder, NodeAccess, NodeId, TaskGraph};
    pub use nabbitc_numasim::{
        simulate_omp, simulate_ws, CostModel, OmpSchedule, SimResult, WsConfig,
    };
    pub use nabbitc_parfor::{Schedule, Team};
    pub use nabbitc_runtime::{NumaTopology, Pool, PoolConfig, StealPolicy};
}
