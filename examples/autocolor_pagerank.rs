//! PageRank with *inferred* colors: `RecursiveBisection` against the hand
//! (majority) coloring, on a real threaded run and on the simulated NUMA
//! machine.
//!
//! The hand coloring knows which vertex block each task reads; the
//! automatic strategy sees only the uncolored task graph (structure, work,
//! footprints) and must rediscover the block locality from the dependence
//! edges. The example prints both remote-access reports side by side —
//! plus the round-robin baseline, so the cost of coloring *badly* is
//! visible in the same table.
//!
//! Run with: `cargo run --release --example autocolor_pagerank`

use nabbitc::autocolor::{apply_assignment, RecursiveBisection, RoundRobin};
use nabbitc::core::RemoteAccessReport;
use nabbitc::graph::analysis::{edge_cut, edge_cut_fraction};
use nabbitc::graph::TaskGraph;
use nabbitc::numasim::{simulate_ws_recolored, WsConfig};
use nabbitc::prelude::*;
use nabbitc::workloads::pagerank::PageRank;
use nabbitc::workloads::webgraph::WebGraphParams;
use std::sync::Arc;

fn uncolored(graph: &TaskGraph) -> TaskGraph {
    let mut g = graph.clone();
    g.strip_colors();
    g
}

fn print_row(name: &str, graph: &TaskGraph, report: &RemoteAccessReport, ranks: Option<bool>) {
    println!(
        "{name:>20}: edge-cut {:>6} ({:>5.1}%), remote accesses {:>5.1}%, ranks {}",
        edge_cut(graph),
        100.0 * edge_cut_fraction(graph),
        report.pct_remote(),
        match ranks {
            Some(true) => "match serial",
            Some(false) => "WRONG",
            // Rows driven with a no-op kernel compute no ranks; don't
            // pretend they were checked.
            None => "n/a (placement probe)",
        },
    );
}

fn main() {
    let pr = PageRank::new(
        &WebGraphParams {
            nv: 20_000,
            ..WebGraphParams::uk2002()
        },
        64,
        10,
    );
    println!(
        "pagerank: {} vertices, {} edges, {} blocks x {} iterations, imbalance {:.1}x\n",
        pr.web.nv,
        pr.web.ne(),
        pr.blocks,
        pr.iters,
        pr.imbalance()
    );

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8); // at least two workers, so colors actually compete

    // NUMA-shaped pool so remote accesses are meaningful: two domains.
    let topo = NumaTopology::new(2, workers.div_ceil(2));
    let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers).with_topology(topo)));
    let exec = StaticExecutor::new(pool);
    let serial = pr.run_serial();
    let check = |ranks: &[f64]| {
        serial
            .iter()
            .zip(ranks.iter())
            .all(|(a, b)| (a - b).abs() < 1e-12)
    };

    println!("threaded run, {workers} workers on 2 simulated domains:");

    // Hand coloring: the graph as the workload built it.
    let hand = Arc::new(pr.task_graph(workers));
    let hand_ranks = pr.run_taskgraph(&exec);
    // Re-execute through the same path to get the remote report for the
    // hand graph (run_taskgraph hides it).
    let hand_report = exec.execute(&hand, Arc::new(|_u, _w| {})).remote;
    print_row(
        "hand (majority)",
        &hand,
        &hand_report,
        Some(check(&hand_ranks)),
    );

    // Automatic colorings from the uncolored graph.
    let bare = uncolored(&hand);
    for strategy in [
        &RecursiveBisection::default() as &dyn ColorAssigner,
        &RoundRobin,
    ] {
        let colors = strategy.assign(&bare, workers);
        let mut recolored = bare.clone();
        apply_assignment(&mut recolored, &colors);
        let recolored = Arc::new(recolored);
        let report = exec.execute(&recolored, Arc::new(|_u, _w| {})).remote;
        print_row(strategy.name(), &recolored, &report, None);
    }

    // Simulated machine: same comparison at paper scale (40 cores).
    println!("\nsimulated 4x10-core machine:");
    let p = 40;
    let graph = pr.task_graph(p);
    let hand_colors: Vec<Color> = graph.nodes().map(|u| graph.color(u)).collect();
    let bare = uncolored(&graph);
    let auto_colors = RecursiveBisection::default().assign(&bare, p);
    let rr_colors = RoundRobin.assign(&bare, p);
    let cfg = WsConfig::nabbitc(p);
    let hand_r = simulate_ws_recolored(&graph, &hand_colors, &cfg);
    let auto_r = simulate_ws_recolored(&bare, &auto_colors, &cfg);
    let rr_r = simulate_ws_recolored(&bare, &rr_colors, &cfg);
    println!(
        "{:>20}: remote {:>5.1}%  makespan {:>9}",
        "hand (majority)",
        hand_r.remote.pct(),
        hand_r.makespan
    );
    println!(
        "{:>20}: remote {:>5.1}%  makespan {:>9} ({:.2}x vs hand)",
        "recursive-bisection",
        auto_r.remote.pct(),
        auto_r.makespan,
        hand_r.makespan as f64 / auto_r.makespan as f64
    );
    println!(
        "{:>20}: remote {:>5.1}%  makespan {:>9} ({:.2}x vs hand)",
        "round-robin",
        rr_r.remote.pct(),
        rr_r.makespan,
        hand_r.makespan as f64 / rr_r.makespan as f64
    );
    println!(
        "\n(expected: bisection rediscovers the block structure — remote% at or \
         below hand's, far below round-robin's)"
    );
}
