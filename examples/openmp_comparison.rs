//! Real threaded three-way comparison on PageRank: task-graph NabbitC vs
//! OpenMP-style static and guided loop teams, all verified against the
//! serial reference and compared on the §V-B locality metric plus
//! load-balance (trace utilization).
//!
//! Run with: `cargo run --release --example openmp_comparison`

use nabbitc::core::{ExecOptions, StaticExecutor};
use nabbitc::parfor::{Schedule, Team};
use nabbitc::prelude::*;
use nabbitc::workloads::omp::pagerank_parfor;
use nabbitc::workloads::pagerank::PageRank;
use nabbitc::workloads::webgraph::WebGraphParams;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let pr = PageRank::new(
        &WebGraphParams {
            nv: 30_000,
            avg_deg: 12,
            out_alpha: 1.9,
            target_alpha: 1.9,
            locality: 0.8,
            seed: 77,
        },
        96,
        8,
    );
    println!(
        "PageRank: {} vertices, {} edges, block imbalance {:.1}x\n",
        pr.web.nv,
        pr.web.ne(),
        pr.imbalance()
    );
    let serial = pr.run_serial();
    let check = |name: &str, result: &[f64]| {
        let max_err = serial
            .iter()
            .zip(result.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "{name} diverged from serial: {max_err}");
    };

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let topo = NumaTopology::new(2, workers.div_ceil(2));

    // Task-graph NabbitC with trace recording for load-balance analysis.
    let pool = Arc::new(Pool::new(
        PoolConfig::nabbitc(workers).with_topology(topo.clone()),
    ));
    let exec = StaticExecutor::new(pool).with_options(ExecOptions {
        record_trace: true,
        count_remote: true,
        ..ExecOptions::default()
    });
    let t = Instant::now();
    let ranks = pr.run_taskgraph(&exec);
    let dt = t.elapsed();
    check("nabbitc", &ranks);
    // Re-run through execute() to grab a report (run_taskgraph consumed it).
    let graph = Arc::new(pr.task_graph(workers));
    let report = exec.execute(&graph, Arc::new(|_u, _w| {}));
    let util = report.trace.utilization();
    println!(
        "nabbitc      : {dt:?}   remote {:>5.1}%   load imbalance {:.2}x",
        report.remote.pct_remote(),
        util.imbalance()
    );

    // OpenMP-style loops on a pinned team.
    let team = Team::new(workers, topo);
    for (name, sched) in [
        ("omp-static ", Schedule::Static),
        ("omp-guided ", Schedule::guided()),
    ] {
        let t = Instant::now();
        let run = pagerank_parfor(&pr, &team, sched);
        let dt = t.elapsed();
        check(name, &run.result);
        println!(
            "{name} : {dt:?}   remote {:>5.1}% (block executions)",
            run.remote.pct_remote()
        );
    }

    println!("\nAll three agree with the serial reference bit-for-bit.");
    println!("The paper's story: static = locality but poor balance on skewed blocks;");
    println!("guided = balance but no locality; NabbitC = both, via colored steals.");
}
