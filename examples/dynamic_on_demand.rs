//! On-demand dynamic execution: the full Nabbit protocol, where the task
//! graph is *discovered* from the sink rather than materialized.
//!
//! The computation is a binomial-coefficient table: `C(n, k)` depends on
//! `C(n-1, k-1)` and `C(n-1, k)`. Asking for one coefficient executes
//! exactly its dependence cone — nothing else (Nabbit "computes nodes on
//! demand", §II).
//!
//! Run with: `cargo run --release --example dynamic_on_demand`

use nabbitc::prelude::*;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Binomial {
    table: Mutex<HashMap<(u32, u32), u128>>,
    colors: usize,
}

impl TaskSpec for Binomial {
    type Key = (u32, u32);

    fn predecessors(&self, &(n, k): &Self::Key) -> Vec<Self::Key> {
        if n == 0 || k == 0 || k == n {
            vec![]
        } else {
            vec![(n - 1, k - 1), (n - 1, k)]
        }
    }

    fn color(&self, &(_, k): &Self::Key) -> Color {
        Color::from(k as usize % self.colors)
    }

    fn compute(&self, &(n, k): &Self::Key, _worker: usize) {
        let v = if k == 0 || k == n {
            1u128
        } else {
            let t = self.table.lock();
            t[&(n - 1, k - 1)] + t[&(n - 1, k)]
        };
        self.table.lock().insert((n, k), v);
    }
}

fn main() {
    let workers = 4;
    let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
    let spec = Arc::new(Binomial {
        table: Mutex::new(HashMap::new()),
        colors: workers,
    });
    let exec = DynamicExecutor::new(pool, spec.clone());

    let (n, k) = (60u32, 27u32);
    let report = exec.execute((n, k));
    let value = spec.table.lock()[&(n, k)];
    println!("C({n}, {k}) = {value}");
    println!(
        "discovered and executed {} nodes on demand (full table would be {})",
        report.nodes_executed,
        (n + 1) * (n + 2) / 2
    );
    println!(
        "steals: {} colored, {} random; remote (logical) {:.1}%",
        report
            .stats
            .workers
            .iter()
            .map(|w| w.colored_steals)
            .sum::<u64>(),
        report
            .stats
            .workers
            .iter()
            .map(|w| w.random_steals)
            .sum::<u64>(),
        report.remote.pct_remote()
    );
    assert_eq!(value, binomial_ref(n as u128, k as u128));
    println!("verified against a serial reference.");
}

fn binomial_ref(n: u128, k: u128) -> u128 {
    let k = k.min(n - k);
    let mut acc = 1u128;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}
