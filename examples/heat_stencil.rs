//! Heat-diffusion stencil: a regular benchmark where static scheduling is
//! hard to beat — NabbitC's job is to get close while staying dynamic.
//!
//! Runs the real kernel under Nabbit and NabbitC policies, verifies both
//! against the serial reference, then shows the simulated 80-core
//! comparison including the OpenMP baselines.
//!
//! Run with: `cargo run --release --example heat_stencil`

use nabbitc::prelude::*;
use nabbitc::workloads::heat::{self, HeatProblem};
use std::sync::Arc;

fn main() {
    // --- Real execution on this machine ---
    let problem = HeatProblem {
        rows: 512,
        cols: 256,
        steps: 10,
        blocks: 64,
    };
    let serial = problem.run_serial();

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    for (name, cfg) in [
        ("nabbit ", PoolConfig::nabbit(workers)),
        ("nabbitc", PoolConfig::nabbitc(workers)),
    ] {
        let pool = Arc::new(Pool::new(cfg));
        let exec = StaticExecutor::new(pool);
        let t = std::time::Instant::now();
        let result = problem.run_taskgraph(&exec);
        let dt = t.elapsed();
        let max_err = serial
            .iter()
            .zip(result.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("{name} ({workers} workers): {dt:?}, max error vs serial = {max_err:.2e}");
        assert!(max_err < 1e-12, "parallel execution must match serial");
    }

    // --- Simulated 80-core NUMA machine (the paper's testbed) ---
    println!("\nsimulated 8x10-core machine, heat at reproduction scale:");
    println!(
        "{:>5} {:>10} {:>10} {:>10}",
        "cores", "omp-static", "nabbit", "nabbitc"
    );
    let scale = 16; // Table I divided by 16
    let cost = CostModel::default();
    let serial_ticks = nabbitc::numasim::serial_ticks(&heat::graph(scale, 1), &cost);
    for p in [10usize, 20, 40, 80] {
        let graph = heat::graph(scale, p);
        let loops = heat::loops(scale, p);
        let topo = NumaTopology::paper_machine().truncated(p);
        let omp = simulate_omp(&loops, OmpSchedule::Static, p, &topo, &cost);
        let nb = simulate_ws(&graph, &WsConfig::nabbit(p));
        let nc = simulate_ws(&graph, &WsConfig::nabbitc(p));
        println!(
            "{:>5} {:>9.1}x {:>9.1}x {:>9.1}x",
            p,
            omp.speedup(serial_ticks),
            nb.speedup(serial_ticks),
            nc.speedup(serial_ticks)
        );
    }
    println!("\n(expected shape: omp-static best, NabbitC close, Nabbit trailing — Fig. 6)");
}
