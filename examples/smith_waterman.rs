//! Smith-Waterman wavefront: the task graph exposes more parallelism than
//! OpenMP's diagonal-barrier version, so both Nabbit and NabbitC edge out
//! OpenMP (§V-A).
//!
//! Run with: `cargo run --release --example smith_waterman`

use nabbitc::prelude::*;
use nabbitc::workloads::sw::{self, SwProblem};
use std::sync::Arc;

fn main() {
    // --- Real alignment ---
    let problem = SwProblem {
        n: 1024,
        m: 768,
        tiles_n: 32,
        tiles_m: 24,
        seed: 11,
    };
    let serial = problem.run_serial();
    let best = SwProblem::best_score(&serial);
    println!(
        "aligned {}x{} (tiles {}x{}), best local score {}",
        problem.n, problem.m, problem.tiles_n, problem.tiles_m, best
    );

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
    let exec = StaticExecutor::new(pool);
    let t = std::time::Instant::now();
    let par = problem.run_taskgraph(&exec);
    println!("nabbitc ({workers} workers): {:?}", t.elapsed());
    assert_eq!(serial, par, "DP matrices must match exactly");

    // --- Simulated comparison: task graph vs diagonal barriers ---
    println!("\nsimulated 8x10-core machine, sw at reproduction scale:");
    println!(
        "{:>5} {:>14} {:>10} {:>10}",
        "cores", "omp(wavefront)", "nabbit", "nabbitc"
    );
    let shape = sw::shape_sw(4);
    let cost = CostModel::default();
    let serial_ticks = nabbitc::numasim::serial_ticks(&sw::graph_from_shape(&shape, 1), &cost);
    for p in [10usize, 20, 40, 80] {
        let graph = sw::graph_from_shape(&shape, p);
        let loops = sw::loops_from_shape(&shape, p);
        let topo = NumaTopology::paper_machine().truncated(p);
        let omp = simulate_omp(&loops, OmpSchedule::Static, p, &topo, &cost);
        let nb = simulate_ws(&graph, &WsConfig::nabbit(p));
        let nc = simulate_ws(&graph, &WsConfig::nabbitc(p));
        println!(
            "{:>5} {:>13.1}x {:>9.1}x {:>9.1}x",
            p,
            omp.speedup(serial_ticks),
            nb.speedup(serial_ticks),
            nc.speedup(serial_ticks)
        );
    }
    println!("\n(expected shape: task-graph schedulers beat the barrier wavefront — Fig. 6 sw)");
}
