//! Quickstart: build a task graph, color it, execute it under NabbitC, and
//! inspect the locality statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use nabbitc::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    // Model a two-phase blocked computation: 8 blocks per phase, each
    // phase-2 block depends on its phase-1 neighborhood. Blocks 0-3 live
    // on worker 0's memory (color 0), blocks 4-7 on worker 1's (color 1).
    let workers = 4;
    let blocks: usize = 32;
    let mut b = GraphBuilder::new();
    for phase in 0..6 {
        for blk in 0..blocks {
            let color = Color::from(blk * workers / blocks);
            let id = b.add_simple_node(1_000, color, 8 * 1024);
            if phase > 0 {
                let prev_base = (phase - 1) * blocks;
                for nb in blk.saturating_sub(1)..=(blk + 1).min(blocks - 1) {
                    b.add_edge((prev_base + nb) as NodeId, id);
                }
            }
        }
    }
    let graph = Arc::new(b.build().expect("acyclic"));

    // Analyze it: the Theorem 1 quantities.
    let a = nabbitc::graph::analysis::analyze(&graph);
    println!(
        "task graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "T1 = {}, T_inf = {}, M = {}, max degree = {}, parallelism = {:.1}",
        a.t1, a.t_inf, a.longest_path_nodes, a.max_degree, a.parallelism
    );

    // Execute under NabbitC (colored steals) on a 2-domain machine model.
    let topo = NumaTopology::new(2, 2);
    let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers).with_topology(topo)));
    let exec = StaticExecutor::new(pool);
    let executed = Arc::new(AtomicU64::new(0));
    let e2 = executed.clone();
    let report = exec.execute(
        &graph,
        Arc::new(move |_node, _worker| {
            // Your kernel here; we just count.
            e2.fetch_add(1, Ordering::Relaxed);
        }),
    );

    println!(
        "\nexecuted {} nodes in {:?}",
        executed.load(Ordering::Relaxed),
        report.elapsed
    );
    println!(
        "remote accesses (paper §V-B metric): {:.1}% ({} of {})",
        report.remote.pct_remote(),
        report.remote.remote(),
        report.remote.total()
    );
    println!(
        "steals: {} colored + {} random successful",
        report
            .stats
            .workers
            .iter()
            .map(|w| w.colored_steals)
            .sum::<u64>(),
        report
            .stats
            .workers
            .iter()
            .map(|w| w.random_steals)
            .sum::<u64>(),
    );
}
