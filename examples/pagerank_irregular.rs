//! PageRank: the paper's exemplar *irregular* benchmark, where NabbitC
//! beats both OpenMP schedules by combining locality and load balance.
//!
//! Runs real power iterations on a synthetic power-law web graph (verified
//! against a serial reference), then sweeps the simulated 80-core machine
//! across all four schedulers.
//!
//! Run with: `cargo run --release --example pagerank_irregular`

use nabbitc::prelude::*;
use nabbitc::workloads::pagerank::PageRank;
use nabbitc::workloads::webgraph::WebGraphParams;
use std::sync::Arc;

fn main() {
    // --- Real execution ---
    let pr = PageRank::new(
        &WebGraphParams {
            nv: 20_000,
            avg_deg: 12,
            out_alpha: 1.9,
            target_alpha: 1.9,
            locality: 0.6,
            seed: 42,
        },
        64,
        10,
    );
    println!(
        "web graph: {} vertices, {} edges, max out-degree {}, block imbalance {:.1}x",
        pr.web.nv,
        pr.web.ne(),
        pr.web.max_out_degree(),
        pr.imbalance()
    );

    let serial = pr.run_serial();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let pool = Arc::new(Pool::new(PoolConfig::nabbitc(workers)));
    let exec = StaticExecutor::new(pool);
    let t = std::time::Instant::now();
    let par = pr.run_taskgraph(&exec);
    println!(
        "nabbitc ({workers} workers): {:?} for {} power iterations",
        t.elapsed(),
        pr.iters
    );
    let max_err = serial
        .iter()
        .zip(par.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 1e-12, "parallel PageRank must match serial");
    println!("max |rank diff| vs serial: {max_err:.2e}");

    // --- Simulated 80-core sweep (the Fig. 6 page-* panels) ---
    println!("\nsimulated 8x10-core machine, twitter-like dataset:");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "cores", "omp-static", "omp-guided", "nabbit", "nabbitc"
    );
    let sim_pr = PageRank::new(
        &WebGraphParams {
            nv: 25_000,
            ..WebGraphParams::twitter2010()
        },
        410,
        10,
    );
    let cost = CostModel::default();
    let serial_ticks = nabbitc::numasim::serial_ticks(&sim_pr.task_graph(1), &cost);
    for p in [10usize, 20, 40, 80] {
        let graph = sim_pr.task_graph(p);
        let loops = sim_pr.loops(p);
        let topo = NumaTopology::paper_machine().truncated(p);
        let os = simulate_omp(&loops, OmpSchedule::Static, p, &topo, &cost);
        let og = simulate_omp(&loops, OmpSchedule::Guided, p, &topo, &cost);
        let nb = simulate_ws(&graph, &WsConfig::nabbit(p));
        let nc = simulate_ws(&graph, &WsConfig::nabbitc(p));
        println!(
            "{:>5} {:>9.1}x {:>9.1}x {:>9.1}x {:>9.1}x",
            p,
            os.speedup(serial_ticks),
            og.speedup(serial_ticks),
            nb.speedup(serial_ticks),
            nc.speedup(serial_ticks)
        );
    }
    println!("\n(expected shape: NabbitC on top at scale — §V-A, Fig. 6 page panels)");
}
